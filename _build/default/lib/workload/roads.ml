open Gdp_core
module P = Gdp_space.Point

type bridge = {
  bridge_id : string;
  on_road : string;
  at : P.t;
  is_open : bool;
  observed_at : float option;
}

type road = { road_id : string; waypoints : P.t list }

type t = {
  roads : road list;
  bridges : bridge list;
  intersections : (string * string) list;
}

let polylines_cross w1 w2 =
  let segments ws =
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | _ -> []
    in
    go ws
  in
  List.exists
    (fun s1 -> List.exists (fun s2 -> Gdp_space.Geometry.segments_intersect s1 s2) (segments w2))
    (segments w1)

let generate rng ~n_roads ~bridges_per_road ?(extent = 100.0)
    ?(open_probability = 0.7) ?(waypoints_per_road = 4) () =
  if n_roads < 0 || bridges_per_road < 0 then
    invalid_arg "Roads.generate: negative counts";
  let roads =
    List.init n_roads (fun i ->
        let waypoints =
          List.init (max 2 waypoints_per_road) (fun _ ->
              P.make (Rng.float rng extent) (Rng.float rng extent))
        in
        { road_id = Printf.sprintf "road_%d" i; waypoints })
  in
  let bridges =
    List.concat_map
      (fun road ->
        List.init bridges_per_road (fun k ->
            let ws = Array.of_list road.waypoints in
            let seg = Rng.int rng (Array.length ws - 1) in
            let u = Rng.float rng 1.0 in
            {
              bridge_id = Printf.sprintf "%s_bridge_%d" road.road_id k;
              on_road = road.road_id;
              at = P.lerp ws.(seg) ws.(seg + 1) u;
              is_open = Rng.float rng 1.0 < open_probability;
              observed_at = Some (Rng.float rng 100.0);
            }))
      roads
  in
  let intersections =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 ->
            if
              String.compare r1.road_id r2.road_id < 0
              && polylines_cross r1.waypoints r2.waypoints
            then Some (r1.road_id, r2.road_id)
            else None)
          roads)
      roads
  in
  { roads; bridges; intersections }

let a = Gdp_logic.Term.atom

let add_to_spec t spec ?model ?(spatial = false) ?(temporal = false) () =
  List.iter (fun r -> Spec.declare_object spec r.road_id) t.roads;
  List.iter (fun b -> Spec.declare_object spec b.bridge_id) t.bridges;
  List.iter
    (fun r ->
      Spec.add_fact spec ?model (Gfact.make "road" ~objects:[ a r.road_id ]);
      if spatial then
        List.iter
          (fun p ->
            Spec.add_fact spec ?model
              (Gfact.make "road_point" ~objects:[ a r.road_id ]
                 ~space:(Gfact.S_at (Gfact.pos_term p))))
          r.waypoints)
    t.roads;
  List.iter
    (fun b ->
      Spec.add_fact spec ?model
        (Gfact.make "bridge" ~objects:[ a b.bridge_id; a b.on_road ]);
      if spatial then
        Spec.add_fact spec ?model
          (Gfact.make "located" ~objects:[ a b.bridge_id ]
             ~space:(Gfact.S_at (Gfact.pos_term b.at)));
      if b.is_open then
        match (temporal, b.observed_at) with
        | true, Some obs ->
            Spec.add_fact spec ?model
              (Gfact.make "open" ~objects:[ a b.bridge_id ]
                 ~time:(Gfact.T_at (Gdp_logic.Term.float obs)))
        | _ -> Spec.add_fact spec ?model (Gfact.make "open" ~objects:[ a b.bridge_id ]))
    t.bridges;
  List.iter
    (fun (r1, r2) ->
      Spec.add_fact spec ?model
        (Gfact.make "road_intersection" ~objects:[ a r1; a r2 ]))
    t.intersections

let add_status_rules spec ?model () =
  let v = Gdp_logic.Term.var in
  let x = v "X" and y = v "Y" in
  Spec.add_rule spec ?model ~name:"open_road"
    ~head:(Gfact.make "open_road" ~objects:[ x ])
    Formula.(
      And
        ( Atom (Gfact.make "road" ~objects:[ x ]),
          Forall
            ( Atom (Gfact.make "bridge" ~objects:[ y; x ]),
              Atom (Gfact.make "open" ~objects:[ y ]) ) ));
  let x = v "X" in
  Spec.add_rule spec ?model ~name:"closed"
    ~head:(Gfact.make "closed" ~objects:[ x ])
    Formula.(
      And
        ( Atom (Gfact.make "bridge" ~objects:[ x; v "_R" ]),
          Not (Atom (Gfact.make "open" ~objects:[ x ])) ));
  let x = v "X" in
  Spec.add_rule spec ?model ~name:"known_status"
    ~head:(Gfact.make "known_status" ~objects:[ x ])
    Formula.(
      And
        ( Atom (Gfact.make "bridge" ~objects:[ x; v "_R" ]),
          Or
            ( Atom (Gfact.make "open" ~objects:[ x ]),
              Atom (Gfact.make "closed" ~objects:[ x ]) ) ));
  let x = v "X" in
  Spec.add_constraint spec ?model ~name:"open_and_closed" ~error:"open_and_closed"
    ~args:[ x ]
    Formula.(
      conj
        [
          Atom (Gfact.make "open" ~objects:[ x ]);
          Atom (Gfact.make "closed" ~objects:[ x ]);
        ])
