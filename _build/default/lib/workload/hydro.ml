open Gdp_core
module P = Gdp_space.Point
module T = Gdp_logic.Term

type t = {
  extent : float;
  samples : (P.t * float) list;
  field : P.t -> float;
}

(* A smooth positive depth field: a sum of a few random radial basins. *)
let make_field rng ~extent ~max_depth =
  let basins =
    List.init 5 (fun _ ->
        let cx = Rng.float rng extent
        and cy = Rng.float rng extent
        and depth = Rng.range rng (0.3 *. max_depth) max_depth
        and radius = Rng.range rng (0.2 *. extent) (0.6 *. extent) in
        (cx, cy, depth, radius))
  in
  fun (p : P.t) ->
    let d =
      List.fold_left
        (fun acc (cx, cy, depth, radius) ->
          let dx = (p.P.x -. cx) /. radius and dy = (p.P.y -. cy) /. radius in
          acc +. (depth *. exp (-.((dx *. dx) +. (dy *. dy)))))
        0.0 basins
    in
    Float.max 1.0 d

let generate rng ~n_samples ?(extent = 100.0) ?(max_depth = 4000.0) () =
  if n_samples < 0 then invalid_arg "Hydro.generate: negative sample count";
  let field = make_field rng ~extent ~max_depth in
  let samples =
    List.init n_samples (fun _ ->
        let p = P.make (Rng.float rng extent) (Rng.float rng extent) in
        (p, field p))
  in
  { extent; samples; field }

let true_depth t p = t.field p

let two_nearest t p =
  let sorted =
    List.sort
      (fun (a, _) (b, _) -> Float.compare (P.euclidean p a) (P.euclidean p b))
      t.samples
  in
  match sorted with s1 :: s2 :: _ -> Some (s1, s2) | _ -> None

let interpolate t p =
  match two_nearest t p with
  | None -> None
  | Some ((p1, d1), (p2, d2)) ->
      let r1 = P.euclidean p p1 and r2 = P.euclidean p p2 in
      let depth =
        if r1 = 0.0 then d1
        else if r2 = 0.0 then d2
        else begin
          let w1 = 1.0 /. r1 and w2 = 1.0 /. r2 in
          ((w1 *. d1) +. (w2 *. d2)) /. (w1 +. w2)
        end
      in
      (* accuracy decays with distance to the nearest sample, scaled so
         that a gap of a tenth of the survey extent halves the trust *)
      let half_distance = t.extent /. 10.0 in
      let accuracy = exp (-.(r1 /. half_distance) *. log 2.0) in
      Some (depth, accuracy)

let add_to_spec t spec ?model ?(object_name = "ocean") () =
  Spec.declare_object spec object_name;
  List.iter
    (fun (p, d) ->
      Spec.add_fact spec ?model
        (Gfact.make "depth" ~values:[ T.float d ] ~objects:[ T.atom object_name ]
           ~space:(Gfact.S_at (Gfact.pos_term p))))
    t.samples;
  (* the paper's function f as a computed predicate: depth_interp(P, D, A) *)
  let interp_builtin (_ : Gdp_logic.Database.ctx) subst args =
    match args with
    | [ pt; d; acc ] -> (
        match Gfact.pos_of_term (Gdp_logic.Subst.apply subst pt) with
        | None -> Seq.empty
        | Some p -> (
            match interpolate t p with
            | None -> Seq.empty
            | Some (depth, accuracy) -> (
                match Gdp_logic.Unify.unify subst d (T.float depth) with
                | None -> Seq.empty
                | Some s -> (
                    match Gdp_logic.Unify.unify s acc (T.float accuracy) with
                    | Some s' -> Seq.return s'
                    | None -> Seq.empty))))
    | _ -> Seq.empty
  in
  Spec.declare_builtin spec "depth_interp" ~arity:3 interp_builtin

let add_interpolation_rule _t spec ?model ~region ~resolution () =
  let v = T.var in
  let p = v "P" and d = v "D" and acc = v "A" in
  Spec.add_rule spec ?model ~name:"depth_interpolation" ~accuracy:acc
    ~head:
      (Gfact.make "depth" ~values:[ d ]
         ~objects:[ T.atom "ocean" ]
         ~space:(Gfact.S_at p))
    Formula.(
      conj
        [
          Test (T.app "region_reps" [ T.atom resolution; T.atom region; p ]);
          Test (T.app "depth_interp" [ p; d; acc ]);
        ])
