(** Census-like attribute data: states, cities, populations, capitals,
    temperatures — the DIME-style non-image workload of the paper's
    introduction. Drives the many-sorted and general-law constraint
    experiments (E2) and the "large city" example of §I. *)

type city = {
  city_id : string;
  in_state : string;
  population : int;
  avg_temperature : float;  (** Fahrenheit, like the paper's examples *)
  location : Gdp_space.Point.t;
  is_capital : bool;
}

type t = private { states : string list; cities : city list }

val generate :
  Rng.t ->
  n_states:int ->
  cities_per_state:int ->
  ?extent:float ->
  ?capital_bug_probability:float ->
  unit ->
  t
(** Each state gets one capital, except that with the given probability
    (default 0) a state gets a {e second} capital — the seeded
    inconsistency that the "each state has only one capital city"
    constraint (§III-C) must catch. *)

val add_to_spec : t -> Gdp_core.Spec.t -> ?model:string -> ?spatial:bool -> unit -> unit
(** Declares objects, the [temperature] and [population] domains and the
    signatures of [city/1], [state/1], [capital_of/2],
    [population{n}(city)], [average_temperature{t}(city)]; asserts the
    facts. *)

val add_constraints : Gdp_core.Spec.t -> ?model:string -> unit -> unit
(** The §III-C examples: one capital per state, and
    [average_temperature] values must lie in the [temperature] domain
    (the latter is also available generically via the [sorts]
    meta-model). *)

val add_large_city_rule : Gdp_core.Spec.t -> ?model:string -> threshold:int -> unit -> unit
(** §I: "any city whose population exceeds [threshold] is a large city". *)
