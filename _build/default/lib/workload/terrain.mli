(** Synthetic terrain: diamond–square fractal elevation grids standing in
    for the unavailable DMA elevation data (DESIGN.md §2). Drives the
    elevation-peak, vegetation, island and shore-line examples (E5–E7). *)

type t = private {
  size : int;  (** grid side, 2^k + 1 *)
  cell : float;  (** edge length of one cell in absolute-space units *)
  heights : float array array;  (** [heights.(j).(i)], row-major *)
}

val generate : Rng.t -> size_exp:int -> ?roughness:float -> ?cell:float -> unit -> t
(** [size_exp = k] gives a (2^k + 1)² grid. Roughness (default 0.55)
    controls the amplitude decay per subdivision. Heights are normalised
    to [0, 1]. *)

val height : t -> int -> int -> float
(** [height t i j]; raises [Invalid_argument] out of range. *)

val cell_center : t -> int -> int -> Gdp_space.Point.t
val min_height : t -> float
val max_height : t -> float

val downsample : t -> factor:int -> t
(** Average-pool by an integer factor (size must stay ≥ 2 cells); the
    result's [cell] grows by the factor. Ground truth for testing the
    area-average operator. *)

val add_elevation_facts :
  t ->
  Gdp_core.Spec.t ->
  resolution:string ->
  ?model:string ->
  ?pred:string ->
  object_name:string ->
  ?scale:float ->
  unit ->
  int
(** Assert one area-uniform elevation fact per cell
    ([pred{h·scale}(object) @u[resolution] center]); the named resolution
    must already be declared with matching cell size and origin at (0,0).
    Returns the number of facts asserted. *)

val add_mask_facts :
  t ->
  Gdp_core.Spec.t ->
  resolution:string ->
  ?model:string ->
  pred:string ->
  object_name:string ->
  keep:(float -> bool) ->
  ?qualifier:[ `At | `Sampled ] ->
  unit ->
  int
(** Assert a point ([`At], default) or area-sampled fact at the centre of
    every cell whose height satisfies [keep] — e.g.
    [keep = (fun h -> h < sea_level)] for lakes. *)
