open Gdp_core
module T = Gdp_logic.Term

type city = {
  city_id : string;
  in_state : string;
  population : int;
  avg_temperature : float;
  location : Gdp_space.Point.t;
  is_capital : bool;
}

type t = { states : string list; cities : city list }

let generate rng ~n_states ~cities_per_state ?(extent = 1000.0)
    ?(capital_bug_probability = 0.0) () =
  if n_states < 0 || cities_per_state < 1 then
    invalid_arg "Census.generate: need at least one city per state";
  let states = List.init n_states (Printf.sprintf "state_%d") in
  let cities =
    List.concat_map
      (fun si ->
        let state = Printf.sprintf "state_%d" si in
        let second_capital =
          cities_per_state > 1 && Rng.float rng 1.0 < capital_bug_probability
        in
        List.init cities_per_state (fun ci ->
            {
              city_id = Printf.sprintf "%s_city_%d" state ci;
              in_state = state;
              population = 1000 + Rng.int rng 5_000_000;
              avg_temperature = Rng.range rng (-20.0) 110.0;
              location =
                Gdp_space.Point.make (Rng.float rng extent) (Rng.float rng extent);
              is_capital = ci = 0 || (ci = 1 && second_capital);
            }))
      (List.init n_states Fun.id)
  in
  { states; cities }

let add_to_spec t spec ?model ?(spatial = false) () =
  (if Gdp_domain.Semantic_domain.Registry.find spec.Spec.domains "temperature" = None
   then
     Spec.declare_domain spec
       (Gdp_domain.Semantic_domain.real_range ~name:"temperature" ~lo:(-100.0)
          ~hi:200.0));
  (if Gdp_domain.Semantic_domain.Registry.find spec.Spec.domains "population" = None
   then
     (* a wide real range keeps the domain serialisable by the printer *)
     Spec.declare_domain spec
       (Gdp_domain.Semantic_domain.real_range ~name:"population" ~lo:0.0 ~hi:1e12));
  (if Spec.signature_of spec "city" = None then begin
     Spec.declare_predicate spec "city" ~object_arity:1;
     Spec.declare_predicate spec "state" ~object_arity:1;
     Spec.declare_predicate spec "capital_of" ~object_arity:2;
     Spec.declare_predicate spec "population" ~value_domains:[ "population" ]
       ~object_arity:1;
     Spec.declare_predicate spec "average_temperature"
       ~value_domains:[ "temperature" ] ~object_arity:1
   end);
  List.iter
    (fun s ->
      Spec.declare_object spec s;
      Spec.add_fact spec ?model (Gfact.make "state" ~objects:[ T.atom s ]))
    t.states;
  List.iter
    (fun c ->
      Spec.declare_object spec c.city_id;
      Spec.add_fact spec ?model (Gfact.make "city" ~objects:[ T.atom c.city_id ]);
      Spec.add_fact spec ?model
        (Gfact.make "population" ~values:[ T.int c.population ]
           ~objects:[ T.atom c.city_id ]);
      Spec.add_fact spec ?model
        (Gfact.make "average_temperature"
           ~values:[ T.float c.avg_temperature ]
           ~objects:[ T.atom c.city_id ]);
      if c.is_capital then
        Spec.add_fact spec ?model
          (Gfact.make "capital_of" ~objects:[ T.atom c.city_id; T.atom c.in_state ]);
      if spatial then
        Spec.add_fact spec ?model
          (Gfact.make "located" ~objects:[ T.atom c.city_id ]
             ~space:(Gfact.S_at (Gfact.pos_term c.location))))
    t.cities

let add_constraints spec ?model () =
  let v = T.var in
  let x = v "X" and y = v "Y" and z = v "Z" in
  Spec.add_constraint spec ?model ~name:"two_capitals" ~error:"two_capitals"
    ~args:[ z ]
    Formula.(
      conj
        [
          Atom (Gfact.make "capital_of" ~objects:[ x; z ]);
          Atom (Gfact.make "capital_of" ~objects:[ y; z ]);
          Test (T.app "\\==" [ x; y ]);
        ]);
  let x = v "X" and y = v "Y" in
  Spec.add_constraint spec ?model ~name:"bad_temp" ~error:"bad_temp" ~args:[ x ]
    Formula.(
      conj
        [
          Atom (Gfact.make "average_temperature" ~values:[ x ] ~objects:[ y ]);
          Not (Test (T.app "domain_contains" [ T.atom "temperature"; x ]));
        ])

let add_large_city_rule spec ?model ~threshold () =
  let v = T.var in
  let x = v "X" and p = v "P" in
  if Spec.signature_of spec "large_city" = None then
    Spec.declare_predicate spec "large_city" ~object_arity:1;
  Spec.add_rule spec ?model ~name:"large_city"
    ~head:(Gfact.make "large_city" ~objects:[ x ])
    Formula.(
      conj
        [
          Atom (Gfact.make "city" ~objects:[ x ]);
          Atom (Gfact.make "population" ~values:[ p ] ~objects:[ x ]);
          Test (T.app ">" [ p; T.int threshold ]);
        ])
