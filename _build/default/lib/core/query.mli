(** Querying a compiled specification: provability, answer enumeration,
    accuracy retrieval and consistency checking.

    Answers follow the open world assumption (§III-A): {!holds} returning
    [false] means {e not provable} ("undefined"), never "false" — falsity
    is expressible only through complementary predicates or an explicit
    CWA meta-model. *)

open Gdp_logic

type t

val create :
  ?world_view:string list ->
  ?meta_view:string list ->
  ?max_depth:int ->
  ?on_depth:[ `Fail | `Raise ] ->
  Spec.t ->
  t
(** Compile and wrap. The engine's ancestor loop check is enabled
    automatically when an active meta-model requires it. Defaults:
    [max_depth = 100_000], [on_depth = `Raise] (a blown budget surfaces as
    {!Gdp_logic.Solve.Depth_exhausted} rather than silent failure). *)

val of_compiled :
  ?max_depth:int -> ?on_depth:[ `Fail | `Raise ] -> Compile.t -> t

val spec : t -> Spec.t
val db : t -> Database.t
val world_view : t -> string list
val meta_view : t -> string list

val holds : t -> Gfact.t -> bool
(** Is the (possibly non-ground) pattern provable? Unqualified patterns
    refer to the default model [w]. *)

val solutions : ?limit:int -> t -> Gfact.t -> Gfact.t list
(** All provable instantiations of the pattern, deduplicated, in
    first-derivation order. Answers that are not fully ground (e.g.
    through unbound qualifier slots) are returned as patterns with
    variables. [limit] bounds the underlying derivations, so with many
    duplicate derivations fewer distinct answers may come back. *)

val accuracy : t -> Gfact.t -> float option
(** The unified accuracy [%[A]] of the pattern (§VII-D) under whichever
    unified-operator meta-model is active; [None] when no accuracy is
    derivable. When several instantiations match, the first one's
    accuracy is returned. *)

val accuracies : ?limit:int -> t -> Gfact.t -> (Gfact.t * float) list
(** Instantiations together with their unified accuracies. *)

type violation = {
  v_model : string;
  v_tag : string;  (** the ERROR type-of-violation *)
  v_args : Term.t list;
  v_objects : Term.t list;
}

val violations : ?limit:int -> t -> violation list
(** All provable [ERROR] facts across the world view (§III-C): the
    world view "is called consistent" iff this is empty. Violations are
    deduplicated. *)

val consistent : t -> bool

val explain : t -> Gfact.t -> string option
(** A human-readable derivation of the first proof of the pattern (the
    requirements-review evidence): an indented tree of the rules, facts,
    builtins and negation-as-failure steps used, with reified [holds]
    terms rendered back in the paper's fact notation. [None] when the
    pattern is not provable. *)

val explain_proof : t -> Gfact.t -> Gdp_logic.Explain.proof option
(** The raw proof tree, for programmatic inspection. *)

val pp_reified_term : Format.formatter -> Term.t -> unit
(** Render a reified [holds/6] / [acc/7] term back in fact notation
    (other terms print as themselves) — pass as [pp_goal] to
    {!Gdp_logic.Explain.pp} or {!Gdp_logic.Explain.to_dot}. *)

val ask : t -> string -> bool
(** Escape hatch: run a raw engine goal (Reader syntax) against the
    compiled database — the vocabulary of DESIGN.md §4 ([holds/6],
    [acc/7], builtins) is available. *)

val ask_all :
  ?limit:int -> t -> string -> (string * Term.t) list list

val pp_violation : Format.formatter -> violation -> unit
