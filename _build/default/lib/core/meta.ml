open Gdp_logic

let clause_of_string = Reader.clause
let clauses_of_string = Reader.program

let mk ?(loop = false) name doc src =
  {
    Spec.meta_name = name;
    meta_doc = doc;
    meta_clauses = clauses_of_string src;
    needs_loop_check = loop;
  }

let contradiction () =
  mk "contradiction" "no fact may be both true and false (§IV-B)"
    {|
    holds(M, 'ERROR', [contradiction, Q], Os, nospace, notime) :-
        holds(M, Q, [true], Os, S, T),
        holds(M, Q, [false], Os, S, T).
    |}

let cwa () =
  mk "cwa" "closed world assumption for unary value-free predicates (§IV-A)"
    {|
    holds(M, Q, [true], [X], nospace, notime) :-
        holds(M, Q, [], [X], nospace, notime).
    holds(M, Q, [false], [X], nospace, notime) :-
        model(M), pred(Q, 0, 1), obj(X),
        \+ holds(M, Q, [true], [X], nospace, notime).
    |}

let spatial_simple () =
  mk "spatial_simple"
    "space-independent facts are true at every point in space (§V-C)"
    {|
    holds(M, Q, Vs, Os, at(P), T) :-
        ground(P),
        holds(M, Q, Vs, Os, nospace, T).
    |}

let spatial_uniform () =
  mk "spatial_uniform"
    "area-uniform operator: patch-wide truth and downward inheritance (§V-C)"
    {|
    holds(M, Q, Vs, Os, at(P1), T) :-
        ground(P1),
        holds(M, Q, Vs, Os, u(R, P), T),
        res_same_cell(R, P1, P).
    holds(M, Q, Vs, Os, u(R2, P2), T) :-
        nonvar(R2),
        res_refines(R2, R1),
        holds(M, Q, Vs, Os, u(R1, P1), T),
        res_subcell_member(R2, R1, P1, P2).
    |}

let spatial_uniform_up () =
  let m =
    mk ~loop:true "spatial_uniform_up"
      "area-uniform operator: upward acquisition when all subareas agree (§V-C)"
      {|
      holds(M, Q, Vs, Os, u(R1, P1), T) :-
          nonvar(R1), ground(P1),
          res_refines(R2, R1),
          res_subcells(R2, R1, P1, [P2 | Rest]),
          holds(M, Q, Vs, Os, u(R2, P2), T),
          forall(member(PX, Rest), holds(M, Q, Vs, Os, u(R2, PX), T)).
      |}
  in
  m

let spatial_sampled () =
  mk "spatial_sampled"
    "area-sampled operator: samples from points and from subareas (§V-C)"
    {|
    holds(M, Q, Vs, Os, s(R, P0), T) :-
        space(R),
        holds(M, Q, Vs, Os, at(P), T),
        res_canon(R, P, P0).
    holds(M, Q, Vs, Os, s(R1, P1), T) :-
        res_refines(R2, R1),
        holds(M, Q, Vs, Os, s(R2, P2), T),
        res_canon(R1, P2, P1).
    |}

let spatial_averaged () =
  mk "spatial_averaged"
    "area-average operator over single-value facts (§V-C)"
    {|
    holds(M, Q, [V0], Os, a(R1, P1), T) :-
        nonvar(R1), ground(P1),
        res_refines(R2, R1),
        res_subcells(R2, R1, P1, [P2 | Rest]),
        holds(M, Q, [_], Os, u(R2, P2), T),
        forall(member(PX, Rest), holds(M, Q, [_], Os, u(R2, PX), T)),
        aggregate_avg(V, (member(PY, [P2 | Rest]), holds(M, Q, [V], Os, u(R2, PY), T)), V0).
    holds(M, Q, [V0], Os, a(R1, P1), T) :-
        nonvar(R1), ground(P1),
        res_refines(R2, R1),
        res_subcells(R2, R1, P1, [P2 | Rest]),
        holds(M, Q, [_], Os, a(R2, P2), T),
        forall(member(PX, Rest), holds(M, Q, [_], Os, a(R2, PX), T)),
        aggregate_avg(V, (member(PY, [P2 | Rest]), holds(M, Q, [V], Os, a(R2, PY), T)), V0).
    |}

let temporal_simple () =
  mk "temporal_simple"
    "time-independent facts are true at every instant (§VI)"
    {|
    holds(M, Q, Vs, Os, S, t(T)) :-
        ground(T),
        holds(M, Q, Vs, Os, S, notime).
    |}

let temporal_uniform () =
  mk "temporal_uniform"
    "interval-uniform operator: member instants and subintervals (§VI-B)"
    {|
    holds(M, Q, Vs, Os, S, t(T)) :-
        ground(T),
        holds(M, Q, Vs, Os, S, tu(Iv)),
        iv_mem(T, Iv).
    holds(M, Q, Vs, Os, S, tu(Iv2)) :-
        nonvar(Iv2),
        holds(M, Q, Vs, Os, S, tu(Iv1)),
        iv_subset(Iv2, Iv1).
    |}

let temporal_sampled () =
  mk "temporal_sampled" "interval-sampled operator (§VI)"
    {|
    holds(M, Q, Vs, Os, S, ts(Iv)) :-
        nonvar(Iv),
        holds(M, Q, Vs, Os, S, t(T)),
        iv_mem(T, Iv).
    holds(M, Q, Vs, Os, S, ts(Iv1)) :-
        nonvar(Iv1),
        holds(M, Q, Vs, Os, S, ts(Iv2)),
        iv_subset(Iv2, Iv1).
    |}

let temporal_comprehension () =
  mk "temporal_comprehension"
    "comprehension principle: expedient interval-uniform truth (§VI-B)"
    {|
    holds(M, Q, Vs, Os, S, tu(Iv)) :-
        nonvar(Iv),
        holds(M, Q, Vs, Os, S, t(T)),
        iv_mem(T, Iv).
    |}

let temporal_continuity () =
  mk "temporal_continuity"
    "continuity assumption for single-value facts (§VI-B)"
    {|
    holds(M, Q, [V1], Os, S, tu(Iv)) :-
        holds(M, Q, [V1], Os, S, t(T1)),
        holds(M, Q, [_V2], Os, S, t(T2)),
        T1 < T2,
        \+ (holds(M, Q, [_V], Os, S, t(T)), T > T1, T < T2),
        iv_make(incl(T1), excl(T2), Iv).
    |}

let temporal_persistence () =
  mk "temporal_persistence"
    "a fact persists from its last observation until contradicted (§I)"
    {|
    holds(M, Q, [V], Os, S, t(T)) :-
        ground(T),
        holds(M, Q, [V], Os, S, t(T1)),
        T1 < T,
        time_now(NOW), T =< NOW,
        \+ (holds(M, Q, [_V2], Os, S, t(T2)), T2 > T1, T2 =< T).
    |}

let temporal_averaged () =
  mk "temporal_averaged"
    "interval-average operator over single-value instant observations (§VI)"
    {|
    holds(M, Q, [V0], Os, S, ta(Iv)) :-
        nonvar(Iv),
        holds(M, Q, [_V1], Os, S, t(T1)),
        iv_mem(T1, Iv),
        aggregate_avg(V, (holds(M, Q, [V], Os, S, t(T)), iv_mem(T, Iv)), V0).
    |}

let point_type () =
  mk "point_type"
    "point-type features: every position-dependent property of the object \
     is realised at a single point (§V-D)"
    {|
    holds(M, point_type, [], [X], nospace, notime) :-
        obj(X),
        holds(M, _Q1, _V1, [X], at(P1), _T1),
        \+ (holds(M, _Q2, _V2, [X], at(P2), _T2), P2 \== P1).
    |}

let overlap () =
  mk "overlap"
    "two objects overlap when position-dependent properties of both are \
     realised at the same point (§V-D)"
    {|
    holds(M, overlap, [], [X, Y], nospace, notime) :-
        holds(M, _Q1, _V1, [X], at(P), _T1),
        holds(M, _Q2, _V2, [Y], at(P), _T2),
        X \== Y.
    |}

let temporal_cyclic () =
  mk "temporal_cyclic"
    "cyclic interval-uniform facts hold at every instant whose phase falls \
     in the cycle's interval (§VI-B's undescribed extension)"
    {|
    holds(M, Q, Vs, Os, S, t(T)) :-
        ground(T),
        holds(M, Q, Vs, Os, S, cyc(Period, Iv)),
        cyc_mem(T, Period, Iv).
    |}

let temporal_now () =
  mk "temporal_now" "&now facts are true throughout the present (§VI-B)"
    {|
    holds(M, Q, Vs, Os, S, t(T)) :-
        ground(T),
        time_present(T),
        holds(M, Q, Vs, Os, S, t(now)).
    |}

let fuzzy_unified_max () =
  mk "fuzzy_unified_max"
    "unified fuzzy operator: highest assigned accuracy (§VII-D)"
    {|
    acc_max(M, Q, Vs, Os, S, T, A) :-
        acc(M, Q, Vs, Os, S, T, _),
        aggregate_max(A0, acc(M, Q, Vs, Os, S, T, A0), A).
    |}

let fuzzy_unified_min () =
  mk "fuzzy_unified_min"
    "unified fuzzy operator variant: lowest assigned accuracy (§VII-D)"
    {|
    acc_max(M, Q, Vs, Os, S, T, A) :-
        acc(M, Q, Vs, Os, S, T, _),
        aggregate_min(A0, acc(M, Q, Vs, Os, S, T, A0), A).
    |}

let fuzzy_unified_avg () =
  mk "fuzzy_unified_avg"
    "unified fuzzy operator variant: average assigned accuracy (§VII-D)"
    {|
    acc_max(M, Q, Vs, Os, S, T, A) :-
        acc(M, Q, Vs, Os, S, T, _),
        aggregate_avg(A0, acc(M, Q, Vs, Os, S, T, A0), A).
    |}

let fuzzy_threshold ~model ~threshold =
  if threshold < 0.0 || threshold > 1.0 then
    invalid_arg "Meta.fuzzy_threshold: threshold outside [0, 1]";
  mk
    (Printf.sprintf "fuzzy_threshold_%s" model)
    (Printf.sprintf
       "facts with unified accuracy above %g are realised in model %s (§VII-C)"
       threshold model)
    (Printf.sprintf
       {|
       holds(%s, Q, Vs, Os, S, T) :-
           acc_max(_M, Q, Vs, Os, S, T, A),
           A > %f.
       |}
       model threshold)

let fuzzy_propagation_name = "fuzzy_propagation"

let fuzzy_propagation () =
  {
    Spec.meta_name = fuzzy_propagation_name;
    meta_doc =
      "generate the mechanical accuracy-propagation clause for every \
       virtual-fact definition (§VII-F)";
    meta_clauses = [];
    needs_loop_check = false;
  }

let sorts spec =
  let clause_for (s : Spec.signature) position domain =
    let value_pattern =
      s.Spec.value_domains
      |> List.mapi (fun i _ -> if i = position then "V" else "_")
      |> String.concat ", "
    in
    Reader.clause
      (Printf.sprintf
         "holds(M, 'ERROR', [bad_sort, %s, V], [], nospace, notime) :- \
          holds(M, %s, [%s], _Os, _S, _T), \\+ domain_contains(%s, V)."
         s.Spec.pred_name s.Spec.pred_name value_pattern domain)
  in
  let clauses =
    List.concat_map
      (fun (s : Spec.signature) ->
        List.mapi (fun i d -> clause_for s i d) s.Spec.value_domains)
      spec.Spec.signatures
  in
  {
    Spec.meta_name = "sorts";
    meta_doc = "many-sorted logic: values must lie in their declared domains (§III-C)";
    meta_clauses = clauses;
    needs_loop_check = false;
  }

let copying ?name ~pred ?fine ?coarse () =
  let f = match fine with Some x -> Printf.sprintf "'%s'" x | None -> "R2" in
  let c = match coarse with Some x -> Printf.sprintf "'%s'" x | None -> "R1" in
  let n = Option.value name ~default:(Printf.sprintf "copy_%s" pred) in
  mk n
    (Printf.sprintf "copying abstraction rule for %s (§V-D)" pred)
    (Printf.sprintf
       {|
       holds(M, %s, Vs, Os, s(%s, P0), T) :-
           res_refines(%s, %s),
           holds(M, %s, Vs, Os, s(%s, P), T),
           res_canon(%s, P, P0).
       |}
       pred c f c pred f c)

let thresholding ?name ~pred ?fine ?coarse ~min_cells () =
  let f = match fine with Some x -> Printf.sprintf "'%s'" x | None -> "R2" in
  let c = match coarse with Some x -> Printf.sprintf "'%s'" x | None -> "R1" in
  let n = Option.value name ~default:(Printf.sprintf "threshold_%s" pred) in
  mk n
    (Printf.sprintf
       "thresholding abstraction rule for %s: present at low resolution only \
        when covering more than %d fine cells (§V-D island example)"
       pred min_cells)
    (Printf.sprintf
       {|
       holds(M, %s, Vs, Os, s(%s, P0), T) :-
           res_refines(%s, %s),
           holds(M, %s, Vs, Os, s(%s, P), T),
           res_canon(%s, P, P0),
           count_distinct(PX, holds(M, %s, Vs, Os, s(%s, PX), T), N),
           N > %d.
       |}
       pred c f c pred f c pred f min_cells)

let averaging ?name ~pred ?fine ?coarse () =
  let f = match fine with Some x -> Printf.sprintf "'%s'" x | None -> "R2" in
  let c = match coarse with Some x -> Printf.sprintf "'%s'" x | None -> "R1" in
  let n = Option.value name ~default:(Printf.sprintf "avg_%s" pred) in
  mk n
    (Printf.sprintf "averaging abstraction rule for %s (§V-D)" pred)
    (Printf.sprintf
       {|
       holds(M, %s, [V0], Os, a(%s, P1), T) :-
           ground(P1),
           res_refines(%s, %s),
           res_subcells(%s, %s, P1, [P2 | Rest]),
           holds(M, %s, [_], Os, u(%s, P2), T),
           forall(member(PX, Rest), holds(M, %s, [_], Os, u(%s, PX), T)),
           aggregate_avg(V, (member(PY, [P2 | Rest]), holds(M, %s, [V], Os, u(%s, PY), T)), V0).
       |}
       pred c f c f c pred f pred f pred f)

let composition ?name ~a ~b ~result ?fine ?coarse () =
  let f = match fine with Some x -> Printf.sprintf "'%s'" x | None -> "R2" in
  let c = match coarse with Some x -> Printf.sprintf "'%s'" x | None -> "R1" in
  let n = Option.value name ~default:(Printf.sprintf "compose_%s" result) in
  mk n
    (Printf.sprintf
       "composition abstraction rule: %s and %s in one coarse cell yield %s \
        (§V-D shore-line example)"
       a b result)
    (Printf.sprintf
       {|
       holds(M, %s, [], Os, at(P0), T) :-
           res_refines(%s, %s),
           holds(M, %s, [], Os, at(P1), T),
           res_canon(%s, P1, P0),
           holds(M, %s, [], Os, at(P2), T),
           res_same_cell(%s, P1, P2).
       |}
       result f c a c b c)

(* ---- §V-D spatial relations between objects ---- *)

let adjacency ?name ~located ~resolution ~max_gap () =
  if max_gap <= 0.0 then invalid_arg "Meta.adjacency: max_gap must be positive";
  let n = Option.value name ~default:"adjacency" in
  mk n
    (Printf.sprintf
       "two objects are adjacent when %s points fall in distinct %s cells whose \
        representatives are within %g (§V-D)"
       located resolution max_gap)
    (Printf.sprintf
       {|
       holds(M, adjacent, [], [X, Y], nospace, notime) :-
           holds(M, %s, _V1, [X], at(P1), _T1),
           holds(M, %s, _V2, [Y], at(P2), _T2),
           X \== Y,
           res_canon('%s', P1, C1),
           res_canon('%s', P2, C2),
           C1 \== C2,
           pt_dist(C1, C2, D),
           D =< %f.
       |}
       located located resolution resolution max_gap)

let relative_position ?name ~located () =
  let n = Option.value name ~default:"relative_position" in
  (* Cartesian convention: direction in radians counterclockwise from +x;
     east (-pi/4, pi/4], north (pi/4, 3pi/4], etc. The direction builtin
     returns [0, 2pi). *)
  mk n
    (Printf.sprintf
       "north_of/south_of/east_of/west_of between objects with %s points (§V-D \
        relative position)"
       located)
    (Printf.sprintf
       {|
       holds(M, north_of, [], [X, Y], nospace, notime) :-
           holds(M, %s, _V1, [X], at(P1), _T1),
           holds(M, %s, _V2, [Y], at(P2), _T2),
           X \== Y,
           pt_direction(P2, P1, A), A > 0.7853981, A =< 2.3561944.
       holds(M, west_of, [], [X, Y], nospace, notime) :-
           holds(M, %s, _V1, [X], at(P1), _T1),
           holds(M, %s, _V2, [Y], at(P2), _T2),
           X \== Y,
           pt_direction(P2, P1, A), A > 2.3561944, A =< 3.9269908.
       holds(M, south_of, [], [X, Y], nospace, notime) :-
           holds(M, %s, _V1, [X], at(P1), _T1),
           holds(M, %s, _V2, [Y], at(P2), _T2),
           X \== Y,
           pt_direction(P2, P1, A), A > 3.9269908, A =< 5.4977871.
       holds(M, east_of, [], [X, Y], nospace, notime) :-
           holds(M, %s, _V1, [X], at(P1), _T1),
           holds(M, %s, _V2, [Y], at(P2), _T2),
           X \== Y,
           pt_direction(P2, P1, A),
           (A =< 0.7853981 ; A > 5.4977871).
       |}
       located located located located located located located located)

let relative_size ?name ~pred ~resolution () =
  let n = Option.value name ~default:(Printf.sprintf "size_%s" pred) in
  mk n
    (Printf.sprintf
       "larger_than between objects by the number of distinct %s cells their %s \
        samples cover (§V-D relative size via the size function)"
       resolution pred)
    (Printf.sprintf
       {|
       holds(M, larger_than, [], [X, Y], nospace, notime) :-
           holds(M, %s, _VX, [X], s('%s', _PX), _TX),
           holds(M, %s, _VY, [Y], s('%s', _PY), _TY),
           X \== Y,
           count_distinct(P1, holds(M, %s, _V1, [X], s('%s', P1), _T1), N1),
           count_distinct(P2, holds(M, %s, _V2, [Y], s('%s', P2), _T2), N2),
           N1 > N2.
       |}
       pred resolution pred resolution pred resolution pred resolution)

let standard_makers () =
  [
    contradiction ();
    cwa ();
    spatial_simple ();
    spatial_uniform ();
    spatial_uniform_up ();
    spatial_sampled ();
    spatial_averaged ();
    point_type ();
    overlap ();
    temporal_simple ();
    temporal_uniform ();
    temporal_sampled ();
    temporal_averaged ();
    temporal_comprehension ();
    temporal_continuity ();
    temporal_persistence ();
    temporal_cyclic ();
    temporal_now ();
    fuzzy_unified_max ();
    fuzzy_unified_min ();
    fuzzy_unified_avg ();
    fuzzy_propagation ();
  ]

let standard_names =
  [
    "contradiction";
    "cwa";
    "spatial_simple";
    "spatial_uniform";
    "spatial_uniform_up";
    "spatial_sampled";
    "spatial_averaged";
    "point_type";
    "overlap";
    "temporal_simple";
    "temporal_uniform";
    "temporal_sampled";
    "temporal_averaged";
    "temporal_comprehension";
    "temporal_continuity";
    "temporal_persistence";
    "temporal_cyclic";
    "temporal_now";
    "fuzzy_unified_max";
    "fuzzy_unified_min";
    "fuzzy_unified_avg";
    "fuzzy_propagation";
    "sorts";
  ]

let install_standard spec =
  List.iter (Spec.add_meta_model spec) (standard_makers ());
  Spec.add_meta_model spec (sorts spec)
