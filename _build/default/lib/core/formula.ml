open Gdp_logic

type t =
  | Atom of Gfact.t
  | Acc of Gfact.t * Term.t
  | Test of Term.t
  | And of t * t
  | Or of t * t
  | Forall of t * t
  | Not of t

let conj = function
  | [] -> invalid_arg "Formula.conj: empty conjunction"
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let atom p = Atom p
let test t = Test t

type safety_error = { message : string; offending : Term.var list }

module Vset = Set.Make (Int)

let vars_of_term t = Term.vars t
let vset_of_term t = List.fold_left (fun s (v : Term.var) -> Vset.add v.Term.id s) Vset.empty (vars_of_term t)

let pattern_vars p =
  Gfact.vars p

let vset_of_pattern p =
  List.fold_left (fun s (v : Term.var) -> Vset.add v.Term.id s) Vset.empty (pattern_vars p)

let free_vars f =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add (v : Term.var) =
    if not (Hashtbl.mem seen v.Term.id) then begin
      Hashtbl.add seen v.Term.id ();
      acc := v :: !acc
    end
  in
  let rec go = function
    | Atom p -> List.iter add (pattern_vars p)
    | Acc (p, a) ->
        List.iter add (pattern_vars p);
        List.iter add (vars_of_term a)
    | Test t -> List.iter add (vars_of_term t)
    | And (a, b) | Or (a, b) | Forall (a, b) ->
        go a;
        go b
    | Not a -> go a
  in
  go f;
  List.rev !acc

(* Left-to-right boundness analysis. [bound] is the set of variables known
   to be instantiated when evaluation reaches a subformula; positive atoms
   bind all their variables, [Or] binds only the intersection of its
   branches, [Not] and [Forall] bind nothing outward. Returns the new
   bound set or the first error. *)
let rec analyse bound = function
  | Atom p -> Ok (Vset.union bound (vset_of_pattern p))
  | Acc (p, a) ->
      (* The accuracy position is an output: it binds its variable. Pattern
         variables should be bound for the aggregate to be well-defined,
         but enumeration over acc facts makes unbound ones acceptable. *)
      Ok (Vset.union (Vset.union bound (vset_of_pattern p)) (vset_of_term a))
  | Test t ->
      (* Arithmetic comparisons evaluate rather than enumerate, so they
         need every variable bound. Other tests (builtins and
         semantic-domain operations) have output positions we cannot know
         without mode declarations; following Prolog practice they are
         assumed to bind all their variables, and an insufficiently
         instantiated call fails softly at run time. *)
      (match t with
      | Term.App (op, ([ _; _ ] as args))
        when List.mem op [ "<"; ">"; "=<"; ">="; "=:="; "=\\="; "\\=="; "\\=" ] ->
          let missing =
            List.filter
              (fun (v : Term.var) -> not (Vset.mem v.Term.id bound))
              (List.concat_map vars_of_term args)
          in
          if missing = [] then Ok bound
          else
            Error
              {
                message =
                  "comparison uses variables not bound by a preceding positive \
                   atom";
                offending = missing;
              }
      | _ -> Ok (Vset.union bound (vset_of_term t)))
  | And (a, b) -> (
      match analyse bound a with Ok bound' -> analyse bound' b | Error e -> Error e)
  | Or (a, b) -> (
      match (analyse bound a, analyse bound b) with
      | Ok ba, Ok bb -> Ok (Vset.inter ba bb)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Forall (guard, concl) -> (
      match analyse bound guard with
      | Error e -> Error e
      | Ok bound_in -> (
          match analyse bound_in concl with
          | Error e -> Error e
          | Ok _ -> Ok bound (* no bindings escape the quantifier *)))
  | Not a -> (
      match analyse bound a with
      | Error e -> Error e
      | Ok _ -> Ok bound (* no bindings escape NAF *))

let check_safety ~head_vars f =
  match analyse Vset.empty f with
  | Error e -> Error e
  | Ok bound ->
      let missing =
        List.filter (fun (v : Term.var) -> not (Vset.mem v.Term.id bound)) head_vars
      in
      if missing = [] then Ok ()
      else
        Error
          {
            message =
              "head variables not bound by a positive atom on every path of the body";
            offending = missing;
          }

let rec to_goals ~default_model = function
  | Atom p -> [ Gfact.to_holds ~default_model p ]
  | Acc (p, a) -> [ Gfact.to_acc_max ~default_model p a ]
  | Test t -> [ t ]
  | And (a, b) -> to_goals ~default_model a @ to_goals ~default_model b
  | Or (a, b) ->
      [
        Term.app ";"
          [
            Builtins.goals_to_body (to_goals ~default_model a);
            Builtins.goals_to_body (to_goals ~default_model b);
          ];
      ]
  | Forall (guard, concl) ->
      [
        Term.app "forall"
          [
            Builtins.goals_to_body (to_goals ~default_model guard);
            Builtins.goals_to_body (to_goals ~default_model concl);
          ];
      ]
  | Not a -> [ Term.app "\\+" [ Builtins.goals_to_body (to_goals ~default_model a) ] ]

let rec pp ppf = function
  | Atom p -> Gfact.pp ppf p
  | Acc (p, a) -> Format.fprintf ppf "%%[%a] %a" Term.pp a Gfact.pp p
  | Test t -> Format.fprintf ppf "test(%a)" Term.pp t
  | And (a, b) -> Format.fprintf ppf "(%a ∧ %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a ∨ %a)" pp a pp b
  | Forall (g, c) -> Format.fprintf ppf "∀(%a → %a)" pp g pp c
  | Not a -> Format.fprintf ppf "not(%a)" pp a
