(** Functor-name conventions of the reified representation.

    Every GDP statement is compiled into first-order terms over these
    functors; meta-rules quantify over the model and predicate argument
    positions, which is how the paper's restricted second-order logic is
    realised on a Prolog-style engine (see DESIGN.md §4). *)

val holds : string
(** [holds(Model, Pred, Values, Objects, Space, Time)] — a fact is
    realised in model [Model]. *)

val acc : string
(** [acc(Model, Pred, Values, Objects, Space, Time, A)] — the fact carries
    accuracy [A] ∈ [0,1] (§VII's [%a q(x)]). *)

val acc_max : string
(** [acc_max(...same..., A)] — the unified fuzzy operator [%[A]]
    (§VII-D): [A] is the highest accuracy assigned to the fact. *)

val error_pred : string
(** Predicate name of constraint violations: [ERROR(tag, args...)] is
    encoded as [holds(M, 'ERROR', [tag | args], [], ...)]. *)

val default_model : string
(** The paper's default model [w]. *)

(** {1 Spatial qualifier constructors} *)

val no_space : string
val at : string  (** [at(pos)] *)

val uniform : string  (** [u(R, pos)] *)

val sampled : string  (** [s(R, pos)] *)

val averaged : string  (** [a(R, pos)] *)

val pos : string  (** [pos(X, Y)] or [pos(X, Y, Z)] *)

(** {1 Temporal qualifier constructors} *)

val no_time : string
val time_at : string  (** [t(T)] *)

val time_uniform : string  (** [tu(iv)] *)

val time_sampled : string  (** [ts(iv)] *)

val time_averaged : string  (** [ta(iv)] *)

val interval : string  (** [iv(Lower, Upper)] *)

val incl : string
val excl : string
val inf : string
val now : string

(** {1 Generator predicates emitted by the compiler} *)

val model_gen : string  (** [model(M)] for every model of the world view *)

val pred_gen : string  (** [pred(Q, ValueArity, ObjectArity)] *)

val obj_gen : string  (** [obj(O)] for every declared object *)

val space_gen : string  (** [space(R)] for every registered resolution *)

val region_gen : string  (** [region(Name)] *)
