open Gdp_logic

type spatial =
  | S_everywhere
  | S_at of Term.t
  | S_uniform of Term.t * Term.t
  | S_sampled of Term.t * Term.t
  | S_averaged of Term.t * Term.t
  | S_var of Term.t

type temporal =
  | T_always
  | T_at of Term.t
  | T_uniform of Term.t
  | T_sampled of Term.t
  | T_averaged of Term.t
  | T_var of Term.t

type t = {
  model : Term.t option;
  pred : Term.t;
  values : Term.t list;
  objects : Term.t list;
  space : spatial;
  time : temporal;
}

let make ?model ?(values = []) ?(objects = []) ?(space = S_everywhere)
    ?(time = T_always) pred =
  {
    model = Option.map Term.atom model;
    pred = Term.atom pred;
    values;
    objects;
    space;
    time;
  }

let pos_term (p : Gdp_space.Point.t) =
  if p.Gdp_space.Point.z = 0.0 then
    Term.app Names.pos [ Term.float p.Gdp_space.Point.x; Term.float p.Gdp_space.Point.y ]
  else
    Term.app Names.pos
      [
        Term.float p.Gdp_space.Point.x;
        Term.float p.Gdp_space.Point.y;
        Term.float p.Gdp_space.Point.z;
      ]

let number_of = function
  | Term.Int n -> Some (float_of_int n)
  | Term.Float f -> Some f
  | _ -> None

let pos_of_term = function
  | Term.App (f, [ x; y ]) when String.equal f Names.pos -> (
      match (number_of x, number_of y) with
      | Some x, Some y -> Some (Gdp_space.Point.make x y)
      | _ -> None)
  | Term.App (f, [ x; y; z ]) when String.equal f Names.pos -> (
      match (number_of x, number_of y, number_of z) with
      | Some x, Some y, Some z -> Some (Gdp_space.Point.make ~z x y)
      | _ -> None)
  | _ -> None

let bound_term = function
  | Gdp_temporal.Interval.Unbounded -> Term.atom Names.inf
  | Gdp_temporal.Interval.Inclusive t -> Term.app Names.incl [ Term.float t ]
  | Gdp_temporal.Interval.Exclusive t -> Term.app Names.excl [ Term.float t ]

let interval_term (iv : Gdp_temporal.Interval.t) =
  Term.app Names.interval
    [ bound_term iv.Gdp_temporal.Interval.lower; bound_term iv.Gdp_temporal.Interval.upper ]

let instant_of_term ?clock t =
  match t with
  | Term.Int n -> Some (float_of_int n)
  | Term.Float f -> Some f
  | Term.Atom a when String.equal a Names.now ->
      Option.map Gdp_temporal.Clock.now clock
  | Term.App ("+", [ Term.Atom a; d ]) when String.equal a Names.now -> (
      match (clock, number_of d) with
      | Some c, Some d -> Some (Gdp_temporal.Clock.now c +. d)
      | _ -> None)
  | Term.App ("-", [ Term.Atom a; d ]) when String.equal a Names.now -> (
      match (clock, number_of d) with
      | Some c, Some d -> Some (Gdp_temporal.Clock.now c -. d)
      | _ -> None)
  | _ -> None

let bound_of_term ?clock t =
  match t with
  | Term.Atom a when String.equal a Names.inf -> Some Gdp_temporal.Interval.Unbounded
  | Term.App (f, [ x ]) when String.equal f Names.incl ->
      Option.map (fun v -> Gdp_temporal.Interval.Inclusive v) (instant_of_term ?clock x)
  | Term.App (f, [ x ]) when String.equal f Names.excl ->
      Option.map (fun v -> Gdp_temporal.Interval.Exclusive v) (instant_of_term ?clock x)
  | _ -> None

let interval_of_term ?clock = function
  | Term.App (f, [ lo; hi ]) when String.equal f Names.interval -> (
      match (bound_of_term ?clock lo, bound_of_term ?clock hi) with
      | Some l, Some u -> Gdp_temporal.Interval.make l u
      | _ -> None)
  | _ -> None

let spatial_term = function
  | S_everywhere -> Term.atom Names.no_space
  | S_at p -> Term.app Names.at [ p ]
  | S_uniform (r, p) -> Term.app Names.uniform [ r; p ]
  | S_sampled (r, p) -> Term.app Names.sampled [ r; p ]
  | S_averaged (r, p) -> Term.app Names.averaged [ r; p ]
  | S_var v -> v

let temporal_term = function
  | T_always -> Term.atom Names.no_time
  | T_at t -> Term.app Names.time_at [ t ]
  | T_uniform iv -> Term.app Names.time_uniform [ iv ]
  | T_sampled iv -> Term.app Names.time_sampled [ iv ]
  | T_averaged iv -> Term.app Names.time_averaged [ iv ]
  | T_var v -> v

let spatial_of_term t =
  match t with
  | Term.Atom a when String.equal a Names.no_space -> S_everywhere
  | Term.App (f, [ p ]) when String.equal f Names.at -> S_at p
  | Term.App (f, [ r; p ]) when String.equal f Names.uniform -> S_uniform (r, p)
  | Term.App (f, [ r; p ]) when String.equal f Names.sampled -> S_sampled (r, p)
  | Term.App (f, [ r; p ]) when String.equal f Names.averaged -> S_averaged (r, p)
  | other -> S_var other

let temporal_of_term t =
  match t with
  | Term.Atom a when String.equal a Names.no_time -> T_always
  | Term.App (f, [ x ]) when String.equal f Names.time_at -> T_at x
  | Term.App (f, [ iv ]) when String.equal f Names.time_uniform -> T_uniform iv
  | Term.App (f, [ iv ]) when String.equal f Names.time_sampled -> T_sampled iv
  | Term.App (f, [ iv ]) when String.equal f Names.time_averaged -> T_averaged iv
  | other -> T_var other

let is_ground p =
  (match p.model with Some m -> Term.is_ground m | None -> true)
  && Term.is_ground p.pred
  && List.for_all Term.is_ground p.values
  && List.for_all Term.is_ground p.objects
  && Term.is_ground (spatial_term p.space)
  && Term.is_ground (temporal_term p.time)

let model_term ~default_model p =
  match p.model with Some m -> m | None -> Term.atom default_model

let to_holds ~default_model p =
  Term.app Names.holds
    [
      model_term ~default_model p;
      p.pred;
      Term.list p.values;
      Term.list p.objects;
      spatial_term p.space;
      temporal_term p.time;
    ]

let to_acc ~default_model p a =
  Term.app Names.acc
    [
      model_term ~default_model p;
      p.pred;
      Term.list p.values;
      Term.list p.objects;
      spatial_term p.space;
      temporal_term p.time;
      a;
    ]

let to_acc_max ~default_model p a =
  Term.app Names.acc_max
    [
      model_term ~default_model p;
      p.pred;
      Term.list p.values;
      Term.list p.objects;
      spatial_term p.space;
      temporal_term p.time;
      a;
    ]

let of_holds = function
  | Term.App (f, [ m; pred; vals; objs; s; t ]) when String.equal f Names.holds -> (
      match (Term.as_list vals, Term.as_list objs) with
      | Some values, Some objects ->
          Some
            {
              model = Some m;
              pred;
              values;
              objects;
              space = spatial_of_term s;
              time = temporal_of_term t;
            }
      | _ -> None)
  | _ -> None

let vars p =
  Term.vars (to_holds ~default_model:Names.default_model p)

let pp ppf p =
  let pp_model ppf = function
    | Some (Term.Atom m) when String.equal m Names.default_model -> ()
    | Some m -> Format.fprintf ppf "%a'" Term.pp m
    | None -> ()
  in
  let pp_values ppf = function
    | [] -> ()
    | vs ->
        Format.fprintf ppf "{%a}"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             Term.pp)
          vs
  in
  let pp_objects ppf os =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
      os
  in
  let pp_space ppf = function
    | S_everywhere -> ()
    | S_at p -> Format.fprintf ppf " @@%a" Term.pp p
    | S_uniform (r, p) -> Format.fprintf ppf " @@u[%a]%a" Term.pp r Term.pp p
    | S_sampled (r, p) -> Format.fprintf ppf " @@s[%a]%a" Term.pp r Term.pp p
    | S_averaged (r, p) -> Format.fprintf ppf " @@a[%a]%a" Term.pp r Term.pp p
    | S_var v -> Format.fprintf ppf " @@?%a" Term.pp v
  in
  let pp_time ppf = function
    | T_always -> ()
    | T_at t -> Format.fprintf ppf " &%a" Term.pp t
    | T_uniform iv -> Format.fprintf ppf " &u%a" Term.pp iv
    | T_sampled iv -> Format.fprintf ppf " &s%a" Term.pp iv
    | T_averaged iv -> Format.fprintf ppf " &a%a" Term.pp iv
    | T_var v -> Format.fprintf ppf " &?%a" Term.pp v
  in
  Format.fprintf ppf "%a%a%a%a%a%a" pp_model p.model Term.pp p.pred pp_values
    p.values pp_objects p.objects pp_space p.space pp_time p.time
