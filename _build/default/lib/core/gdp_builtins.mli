(** Built-in predicates specific to the GDP formalism, registered by the
    compiler into every compiled database. They close over the
    specification, so a resolution/region/domain name appearing in a goal
    is resolved against the spec's declarations.

    Spatial (positions are [pos/2-3] terms, resolutions named atoms):
    - [pt_dist(P1, P2, D)] — distance in the spec's coordinate system;
    - [pt_direction(P1, P2, A)] — direction in radians;
    - [res_apply(R, P, P0)] — P0 = R(P); P must be ground;
    - [res_same_cell(R, P1, P2)] — R(P1) = R(P2); both points ground;
    - [res_refines(R2, R1)] — the strict refinement R2 >> R1, R2 ≠ R1;
      unbound arguments enumerate the spec's declared spaces;
    - [res_subcells(R2, R1, P, Ps)] — representative points of the R2
      cells inside the R1 cell of P;
    - [res_canon(R, P, P1)] — same cell as [P] when [P1] is ground,
      binds [P1 = R(P)] when unbound;
    - [res_subcell_member(R2, R1, P1, P2)] — enumerates the R2-subcell
      representatives of P1's R1-cell, or checks co-location;
    - [region_mem(Name, P)] — P ground: membership test;
    - [region_reps(R, Name, P)] — enumerates (backtracking) the
      representative points of R inside the named region.

    The paper's [size] function (§V-D, the island example) needs no
    dedicated builtin: [count_distinct(P, <goal over P>, N)] counts the
    distinct cells a feature covers at a resolution.

    Temporal (instants are numbers; [now] and [now ± d] resolved by the
    spec's clock):
    - [iv_mem(T, Iv)];
    - [iv_subset(Iv1, Iv2)];
    - [iv_before(Iv1, Iv2)];
    - [iv_make(L, U, Iv)] — builds an interval term from bound terms,
      failing when empty;
    - [cyc_mem(T, Period, Iv)] — the phase [T mod Period] lies in the
      phase interval (cyclic phenomena, the §VI-B extension);
    - [tres_apply(R, T, T0)], [tres_cell(R, T, Iv)], [tres_refines(R2, R1)]
      — logical time;
    - [time_now(T)], [time_past(T)], [time_present(T)], [time_future(T)].

    Domains and fuzziness:
    - [domain_contains(D, V)] — characteristic function; enumerates finite
      domains when V is unbound;
    - [domain_op(D, Op, Args, Result)] — apply a named domain operation;
    - [fz_and(A, B, C)], [fz_or(A, B, C)], [fz_not(A, B)] — the spec's
      connective family;
    - [ac_eval(ReifiedFormula, A)] — §VII-F uncertainty propagation over a
      reified body formula (see {!Compile.reify_formula}).

    All builtins fail softly (no exception) on insufficiently instantiated
    or ill-typed arguments, matching the open-world reading: what cannot be
    established is simply not provable. *)

open Gdp_logic

val install : Spec.t -> Database.t -> unit

val reify_formula : default_model:string -> Formula.t -> Term.t
(** The runtime representation consumed by [ac_eval]:
    [fatom(H)], [ftest(G)], [fand/2], [for/2], [fall(G, C)], [fnot(G)]. An
    [Acc] formula node reifies as [ftest] of its [acc_max] goal (crisp). *)
