lib/core/spec.ml: Database Float Formula Gdp_domain Gdp_fuzzy Gdp_logic Gdp_space Gdp_temporal Gfact List Names Printf String Term
