lib/core/gdp_builtins.ml: Database Float Formula Gdp_domain Gdp_fuzzy Gdp_logic Gdp_space Gdp_temporal Gfact List Names Seq Spec String Subst Term Unify
