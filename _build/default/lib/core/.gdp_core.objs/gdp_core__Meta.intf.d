lib/core/meta.mli: Database Gdp_logic Spec
