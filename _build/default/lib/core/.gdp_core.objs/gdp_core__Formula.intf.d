lib/core/formula.mli: Format Gdp_logic Gfact Term
