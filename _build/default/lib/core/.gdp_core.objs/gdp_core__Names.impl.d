lib/core/names.ml:
