lib/core/compile.ml: Bottom_up Database Engine Formula Gdp_builtins Gdp_logic Gdp_space Gdp_temporal Gfact List Meta Names Printf Spec String Term
