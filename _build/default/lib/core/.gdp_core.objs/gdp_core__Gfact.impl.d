lib/core/gfact.ml: Format Gdp_logic Gdp_space Gdp_temporal List Names Option String Term
