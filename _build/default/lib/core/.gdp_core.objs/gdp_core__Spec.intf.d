lib/core/spec.mli: Database Formula Gdp_domain Gdp_fuzzy Gdp_logic Gdp_space Gdp_temporal Gfact Term
