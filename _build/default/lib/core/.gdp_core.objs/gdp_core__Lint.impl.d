lib/core/lint.ml: Bottom_up Compile Format Formula Gdp_domain Gdp_logic Gdp_space Gfact List Names Printf Query Set Spec String Term
