lib/core/lint.ml: Format Formula Gdp_domain Gdp_logic Gdp_space Gfact List Names Printf Set Spec String Term
