lib/core/lint.mli: Format Spec
