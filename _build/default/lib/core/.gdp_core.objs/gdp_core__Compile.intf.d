lib/core/compile.mli: Database Gdp_logic Spec
