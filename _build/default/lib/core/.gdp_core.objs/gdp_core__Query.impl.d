lib/core/query.ml: Compile Explain Format Gdp_logic Gfact Hashtbl List Names Option Reader Solve String Subst Term
