lib/core/query.ml: Bottom_up Compile Explain Format Gdp_logic Gfact Hashtbl List Names Option Reader Solve Spec String Subst Term Unify
