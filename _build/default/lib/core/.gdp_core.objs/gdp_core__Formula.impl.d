lib/core/formula.ml: Builtins Format Gdp_logic Gfact Hashtbl Int List Set Term
