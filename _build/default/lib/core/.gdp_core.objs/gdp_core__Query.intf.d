lib/core/query.mli: Compile Database Format Gdp_logic Gfact Spec Term
