lib/core/gdp_builtins.mli: Database Formula Gdp_logic Spec Term
