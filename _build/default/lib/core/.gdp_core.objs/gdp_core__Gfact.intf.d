lib/core/gfact.mli: Format Gdp_logic Gdp_space Gdp_temporal Term
