lib/core/compare.mli: Format Gfact Query Spec
