lib/core/compare.ml: Format Gdp_logic Gfact List Names Query Term
