lib/core/names.mli:
