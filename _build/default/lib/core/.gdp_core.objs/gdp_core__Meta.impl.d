lib/core/meta.ml: Gdp_logic List Option Printf Reader Spec String
