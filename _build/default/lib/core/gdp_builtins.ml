open Gdp_logic
module Sd = Gdp_domain.Semantic_domain
module Res = Gdp_space.Resolution
module Res1 = Gdp_temporal.Resolution1d
module Iv = Gdp_temporal.Interval

let ret = Seq.return

let unify_ret subst a b =
  match Unify.unify subst a b with Some s -> ret s | None -> Seq.empty

let walk = Subst.walk

let point_arg subst t = Gfact.pos_of_term (Subst.apply subst t)

let space_arg spec subst t =
  match walk subst t with
  | Term.Atom name -> Spec.find_space spec name
  | _ -> None

let tspace_arg spec subst t =
  match walk subst t with
  | Term.Atom name -> Spec.find_tspace spec name
  | _ -> None

let interval_arg spec subst t =
  match Subst.apply subst t with
  | Term.App ("cell", [ Term.Atom r; instant ]) -> (
      (* symbolic logical-time cell: [&u[R] t] from the surface syntax *)
      match (Spec.find_tspace spec r, instant) with
      | Some res, Term.Float x -> Some (Res1.cell_of res x)
      | Some res, Term.Int n -> Some (Res1.cell_of res (float_of_int n))
      | _ -> None)
  | applied -> Gfact.interval_of_term ~clock:spec.Spec.clock applied

let number_arg subst t =
  match walk subst t with
  | Term.Int n -> Some (float_of_int n)
  | Term.Float f -> Some f
  | Term.Atom a when String.equal a Names.now ->
      None (* resolved only in interval bounds *)
  | _ -> None

(* ---------- spatial ---------- *)

let bi_pt_dist spec (_ : Database.ctx) subst = function
  | [ p1; p2; d ] -> (
      match (point_arg subst p1, point_arg subst p2) with
      | Some a, Some b ->
          unify_ret subst d (Term.float (Gdp_space.Coord.distance spec.Spec.coord a b))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_pt_direction spec (_ : Database.ctx) subst = function
  | [ p1; p2; dir ] -> (
      match (point_arg subst p1, point_arg subst p2) with
      | Some a, Some b ->
          unify_ret subst dir
            (Term.float (Gdp_space.Coord.direction spec.Spec.coord a b))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_res_apply spec (_ : Database.ctx) subst = function
  | [ r; p; p0 ] -> (
      match (space_arg spec subst r, point_arg subst p) with
      | Some res, Some pt -> unify_ret subst p0 (Gfact.pos_term (Res.apply res pt))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_res_same_cell spec (_ : Database.ctx) subst = function
  | [ r; p1; p2 ] -> (
      match (space_arg spec subst r, point_arg subst p1, point_arg subst p2) with
      | Some res, Some a, Some b ->
          if Res.same_cell res a b then ret subst else Seq.empty
      | _ -> Seq.empty)
  | _ -> Seq.empty

(* Strict refinement; unbound arguments enumerate declared spaces. *)
let bi_res_refines spec (_ : Database.ctx) subst = function
  | [ r2; r1 ] ->
      let candidates t =
        match walk subst t with
        | Term.Atom name -> (
            match Spec.find_space spec name with Some r -> [ r ] | None -> [])
        | Term.Var _ -> spec.Spec.spaces
        | _ -> []
      in
      let fines = candidates r2 and coarses = candidates r1 in
      List.to_seq fines
      |> Seq.concat_map (fun (fine : Res.t) ->
             List.to_seq coarses
             |> Seq.filter_map (fun (coarse : Res.t) ->
                    if
                      (not (String.equal fine.Res.name coarse.Res.name))
                      && Res.refines ~fine ~coarse
                    then
                      match
                        Unify.unify subst r2 (Term.atom fine.Res.name)
                      with
                      | None -> None
                      | Some s -> (
                          match Unify.unify s r1 (Term.atom coarse.Res.name) with
                          | Some s' -> Some s'
                          | None -> None)
                    else None))
  | _ -> Seq.empty

let bi_res_subcells spec (_ : Database.ctx) subst = function
  | [ r2; r1; p; ps ] -> (
      match (space_arg spec subst r2, space_arg spec subst r1, point_arg subst p) with
      | Some fine, Some coarse, Some pt when Res.refines ~fine ~coarse ->
          let reps = Res.subcell_representatives ~fine ~coarse pt in
          unify_ret subst ps (Term.list (List.map Gfact.pos_term reps))
      | _ -> Seq.empty)
  | _ -> Seq.empty

(* res_canon(R, P, P1): relate a point to a point of the same R-cell.
   With P1 ground it is res_same_cell; with P1 unbound it binds P1 to the
   representative point R(P) — giving the meta-rules a terminating
   enumeration mode. *)
let bi_res_canon spec (_ : Database.ctx) subst = function
  | [ r; p; p1 ] -> (
      match (space_arg spec subst r, point_arg subst p) with
      | Some res, Some pt -> (
          match point_arg subst p1 with
          | Some pt1 -> if Res.same_cell res pt pt1 then ret subst else Seq.empty
          | None -> unify_ret subst p1 (Gfact.pos_term (Res.apply res pt)))
      | _ -> Seq.empty)
  | _ -> Seq.empty

(* res_subcell_member(R2, R1, P1, P2): P2 ranges over the R2-subcell
   representatives of the R1-cell containing P1; with P2 ground it checks
   co-location instead. *)
let bi_res_subcell_member spec (_ : Database.ctx) subst = function
  | [ r2; r1; p1; p2 ] -> (
      match
        (space_arg spec subst r2, space_arg spec subst r1, point_arg subst p1)
      with
      | Some fine, Some coarse, Some pt when Res.refines ~fine ~coarse -> (
          match point_arg subst p2 with
          | Some pt2 ->
              if Res.same_cell coarse pt pt2 then ret subst else Seq.empty
          | None ->
              Res.subcell_representatives ~fine ~coarse pt
              |> List.to_seq
              |> Seq.filter_map (fun rep ->
                     Unify.unify subst p2 (Gfact.pos_term rep)))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_region_mem spec (_ : Database.ctx) subst = function
  | [ name; p ] -> (
      match (walk subst name, point_arg subst p) with
      | Term.Atom n, Some pt -> (
          match Spec.find_region spec n with
          | Some region when Gdp_space.Region.mem pt region -> ret subst
          | _ -> Seq.empty)
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_region_reps spec (_ : Database.ctx) subst = function
  | [ r; name; p ] -> (
      match (space_arg spec subst r, walk subst name) with
      | Some res, Term.Atom n -> (
          match Spec.find_region spec n with
          | None -> Seq.empty
          | Some region ->
              Res.representatives res region
              |> List.to_seq
              |> Seq.filter_map (fun pt ->
                     Unify.unify subst p (Gfact.pos_term pt)))
      | _ -> Seq.empty)
  | _ -> Seq.empty

(* ---------- temporal ---------- *)

let bi_iv_mem spec (_ : Database.ctx) subst = function
  | [ t; iv ] -> (
      match (number_arg subst t, interval_arg spec subst iv) with
      | Some x, Some interval ->
          if Iv.mem x interval then ret subst else Seq.empty
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_iv_subset spec (_ : Database.ctx) subst = function
  | [ iv1; iv2 ] -> (
      match (interval_arg spec subst iv1, interval_arg spec subst iv2) with
      | Some a, Some b -> if Iv.subset a ~of_:b then ret subst else Seq.empty
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_iv_before spec (_ : Database.ctx) subst = function
  | [ iv1; iv2 ] -> (
      match (interval_arg spec subst iv1, interval_arg spec subst iv2) with
      | Some a, Some b -> if Iv.before a b then ret subst else Seq.empty
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_iv_make spec (_ : Database.ctx) subst = function
  | [ lo; hi; iv ] -> (
      let candidate =
        Term.app Names.interval [ Subst.apply subst lo; Subst.apply subst hi ]
      in
      match interval_arg spec subst candidate with
      | Some interval -> unify_ret subst iv (Gfact.interval_term interval)
      | None -> Seq.empty)
  | _ -> Seq.empty

(* cyc_mem(T, Period, Iv): the phase of T within a cycle of the given
   period falls inside the phase interval — the cyclic extension of the
   interval-uniform operator (§VI-B mentions it without details). *)
let bi_cyc_mem spec (_ : Database.ctx) subst = function
  | [ t; period; iv ] -> (
      match
        (number_arg subst t, number_arg subst period, interval_arg spec subst iv)
      with
      | Some x, Some p, Some interval when p > 0.0 ->
          let phase = Float.rem x p in
          let phase = if phase < 0.0 then phase +. p else phase in
          if Iv.mem phase interval then ret subst else Seq.empty
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_tres_apply spec (_ : Database.ctx) subst = function
  | [ r; t; t0 ] -> (
      match (tspace_arg spec subst r, number_arg subst t) with
      | Some res, Some x -> unify_ret subst t0 (Term.float (Res1.apply res x))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_tres_cell spec (_ : Database.ctx) subst = function
  | [ r; t; iv ] -> (
      match (tspace_arg spec subst r, number_arg subst t) with
      | Some res, Some x ->
          unify_ret subst iv (Gfact.interval_term (Res1.cell_of res x))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_tres_refines spec (_ : Database.ctx) subst = function
  | [ r2; r1 ] ->
      let candidates t =
        match walk subst t with
        | Term.Atom name -> (
            match Spec.find_tspace spec name with Some r -> [ r ] | None -> [])
        | Term.Var _ -> spec.Spec.tspaces
        | _ -> []
      in
      List.to_seq (candidates r2)
      |> Seq.concat_map (fun (fine : Res1.t) ->
             List.to_seq (candidates r1)
             |> Seq.filter_map (fun (coarse : Res1.t) ->
                    if
                      (not (String.equal fine.Res1.name coarse.Res1.name))
                      && Res1.refines ~fine ~coarse
                    then
                      match Unify.unify subst r2 (Term.atom fine.Res1.name) with
                      | None -> None
                      | Some s -> (
                          match Unify.unify s r1 (Term.atom coarse.Res1.name) with
                          | Some s' -> Some s'
                          | None -> None)
                    else None))
  | _ -> Seq.empty

let bi_time_now spec (_ : Database.ctx) subst = function
  | [ t ] ->
      unify_ret subst t (Term.float (Gdp_temporal.Clock.now spec.Spec.clock))
  | _ -> Seq.empty

let time_test f spec (_ : Database.ctx) subst = function
  | [ t ] -> (
      match number_arg subst t with
      | Some x -> if f spec.Spec.clock x then ret subst else Seq.empty
      | None -> Seq.empty)
  | _ -> Seq.empty

(* ---------- domains and fuzziness ---------- *)

let bi_domain_contains spec (_ : Database.ctx) subst = function
  | [ d; v ] -> (
      match walk subst d with
      | Term.Atom dname -> (
          match Sd.Registry.find spec.Spec.domains dname with
          | None -> Seq.empty
          | Some dom -> (
              match walk subst v with
              | Term.Var _ -> (
                  match dom.Sd.enumerate with
                  | Some values ->
                      List.to_seq values
                      |> Seq.filter_map (fun value -> Unify.unify subst v value)
                  | None -> Seq.empty)
              | value ->
                  if Sd.contains dom (Subst.apply subst value) then ret subst
                  else Seq.empty))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_domain_op spec (_ : Database.ctx) subst = function
  | [ d; op; args; result ] -> (
      match (walk subst d, walk subst op, Term.as_list (Subst.apply subst args)) with
      | Term.Atom dname, Term.Atom opname, Some arg_list -> (
          match Sd.Registry.find spec.Spec.domains dname with
          | None -> Seq.empty
          | Some dom -> (
              match Sd.apply_operation dom opname arg_list with
              | Some value -> unify_ret subst result value
              | None -> Seq.empty))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let truth_arg subst t =
  match number_arg subst t with
  | Some f when f >= 0.0 && f <= 1.0 -> Some (Gdp_fuzzy.Truth.v f)
  | _ -> None

let bi_fz_binop op spec (_ : Database.ctx) subst = function
  | [ a; b; c ] -> (
      match (truth_arg subst a, truth_arg subst b) with
      | Some x, Some y ->
          unify_ret subst c
            (Term.float (Gdp_fuzzy.Truth.to_float (op spec.Spec.fuzzy_family x y)))
      | _ -> Seq.empty)
  | _ -> Seq.empty

let bi_fz_not (_spec : Spec.t) (_ : Database.ctx) subst = function
  | [ a; b ] -> (
      match truth_arg subst a with
      | Some x ->
          unify_ret subst b
            (Term.float (Gdp_fuzzy.Truth.to_float (Gdp_fuzzy.Algebra.neg x)))
      | None -> Seq.empty)
  | _ -> Seq.empty

(* ---------- uncertainty propagation (§VII-F) ---------- *)

type ac_atom = Holds of Term.t | Goal of Term.t

let reify_formula ~default_model f =
  let rec go = function
    | Formula.Atom p -> Term.app "fatom" [ Gfact.to_holds ~default_model p ]
    | Formula.Acc (p, a) ->
        Term.app "ftest" [ Gfact.to_acc_max ~default_model p a ]
    | Formula.Test t -> Term.app "ftest" [ t ]
    | Formula.And (a, b) -> Term.app "fand" [ go a; go b ]
    | Formula.Or (a, b) -> Term.app "for" [ go a; go b ]
    | Formula.Forall (g, c) -> Term.app "fall" [ go g; go c ]
    | Formula.Not a -> Term.app "fnot" [ go a ]
  in
  go f

(* Build the instantiated Propagate tree by proving quantifier guards and
   negations under the current substitution, then evaluate with the
   accuracy oracle. *)
let bi_ac_eval spec (ctx : Database.ctx) subst = function
  | [ formula; out ] -> (
      let prove = ctx.Database.prove in
      let acc_var = Term.var "_AC" in
      let rec build s ft =
        match walk s ft with
        | Term.App ("fatom", [ h ]) ->
            Some (Gdp_fuzzy.Propagate.Atom (Holds (Subst.apply s h)))
        | Term.App ("ftest", [ g ]) ->
            Some (Gdp_fuzzy.Propagate.Atom (Goal (Subst.apply s g)))
        | Term.App ("fand", [ a; b ]) -> (
            match (build s a, build s b) with
            | Some x, Some y -> Some (Gdp_fuzzy.Propagate.And (x, y))
            | _ -> None)
        | Term.App ("for", [ a; b ]) -> (
            match (build s a, build s b) with
            | Some x, Some y -> Some (Gdp_fuzzy.Propagate.Or (x, y))
            | _ -> None)
        | Term.App ("fall", [ g; c ]) ->
            let guard_goal = goal_of s g in
            let instances =
              prove s guard_goal
              |> Seq.filter_map (fun s' ->
                     match (build s' g, build s' c) with
                     | Some gi, Some ci -> Some (gi, ci)
                     | _ -> None)
              |> List.of_seq
            in
            Some
              (Gdp_fuzzy.Propagate.Forall
                 (Gdp_fuzzy.Propagate.Atom (Goal (Term.atom "true")), instances))
        | Term.App ("fnot", [ g ]) ->
            let provable =
              match Seq.uncons (prove s (goal_of s g)) with
              | Some _ -> true
              | None -> false
            in
            Some
              (Gdp_fuzzy.Propagate.Not_provable
                 (Gdp_fuzzy.Propagate.Atom (Goal (Term.atom "true")), provable))
        | _ -> None
      (* the provability goal corresponding to a reified subformula *)
      and goal_of s ft =
        match walk s ft with
        | Term.App ("fatom", [ h ]) -> h
        | Term.App ("ftest", [ g ]) -> g
        | Term.App ("fand", [ a; b ]) -> Term.app "," [ goal_of s a; goal_of s b ]
        | Term.App ("for", [ a; b ]) -> Term.app ";" [ goal_of s a; goal_of s b ]
        | Term.App ("fall", [ g; c ]) ->
            Term.app "forall" [ goal_of s g; goal_of s c ]
        | Term.App ("fnot", [ g ]) -> Term.app "\\+" [ goal_of s g ]
        | other -> other
      in
      let oracle = function
        | Goal (Term.Atom "true") -> Some Gdp_fuzzy.Truth.absolutely_true
        | Goal g -> (
            match Seq.uncons (prove subst g) with
            | Some _ -> Some Gdp_fuzzy.Truth.absolutely_true
            | None -> None)
        | Holds h -> (
            (* highest accuracy assigned to this exact fact; absolutely
               true when the fact holds without any accuracy statement *)
            let acc_goal =
              match h with
              | Term.App (hf, [ m; q; vs; os; s; t ])
                when String.equal hf Names.holds ->
                  Some (Term.app Names.acc [ m; q; vs; os; s; t; acc_var ])
              | _ -> None
            in
            let accs =
              match acc_goal with
              | None -> []
              | Some g ->
                  prove subst g
                  |> Seq.filter_map (fun s' ->
                         match Subst.apply s' acc_var with
                         | Term.Float f when f >= 0.0 && f <= 1.0 -> Some f
                         | Term.Int n when n >= 0 && n <= 1 ->
                             Some (float_of_int n)
                         | _ -> None)
                  |> List.of_seq
            in
            match accs with
            | _ :: _ -> Some (Gdp_fuzzy.Truth.v (List.fold_left Float.max 0.0 accs))
            | [] -> (
                match Seq.uncons (prove subst h) with
                | Some _ -> Some Gdp_fuzzy.Truth.absolutely_true
                | None -> None))
      in
      match build subst formula with
      | None -> Seq.empty
      | Some tree -> (
          match
            Gdp_fuzzy.Propagate.ac ~family:spec.Spec.fuzzy_family oracle tree
          with
          | None -> Seq.empty
          | Some a ->
              unify_ret subst out (Term.float (Gdp_fuzzy.Truth.to_float a))))
  | _ -> Seq.empty

let install spec db =
  let reg name arity fn = Database.register_builtin db (name, arity) (fn spec) in
  reg "pt_dist" 3 bi_pt_dist;
  reg "pt_direction" 3 bi_pt_direction;
  reg "res_apply" 3 bi_res_apply;
  reg "res_same_cell" 3 bi_res_same_cell;
  reg "res_refines" 2 bi_res_refines;
  reg "res_subcells" 4 bi_res_subcells;
  reg "res_canon" 3 bi_res_canon;
  reg "res_subcell_member" 4 bi_res_subcell_member;
  reg "region_mem" 2 bi_region_mem;
  reg "region_reps" 3 bi_region_reps;
  reg "iv_mem" 2 bi_iv_mem;
  reg "iv_subset" 2 bi_iv_subset;
  reg "iv_before" 2 bi_iv_before;
  reg "iv_make" 3 bi_iv_make;
  reg "cyc_mem" 3 bi_cyc_mem;
  reg "tres_apply" 3 bi_tres_apply;
  reg "tres_cell" 3 bi_tres_cell;
  reg "tres_refines" 2 bi_tres_refines;
  reg "time_now" 1 bi_time_now;
  reg "time_past" 1 (time_test Gdp_temporal.Clock.past);
  reg "time_present" 1 (time_test Gdp_temporal.Clock.present);
  reg "time_future" 1 (time_test Gdp_temporal.Clock.future);
  reg "domain_contains" 2 bi_domain_contains;
  reg "domain_op" 4 bi_domain_op;
  reg "fz_and" 3 (bi_fz_binop Gdp_fuzzy.Algebra.conj);
  reg "fz_or" 3 (bi_fz_binop Gdp_fuzzy.Algebra.disj);
  reg "fz_not" 2 bi_fz_not;
  reg "ac_eval" 2 bi_ac_eval
