(** The restricted formula grammar [F] (§III-A) and its compilation to
    engine goals.

    The grammar, after the paper (with [q1] a constant predicate):
    {v
    F ::= q1(Xi)
        | F1 ∧ F2
        | F1 ∨ F2
        | F1 ∧ (∀Xj)(F2 → F3)      — Xj not free in the enclosing rule
        | F1 ∧ not(F2)              — "not" = not provable (NAF)
    v}

    plus two executable extensions the paper introduces in later sections:
    semantic-domain operations used as tests (§III-B, "false is interpreted
    as not provable") and accuracy atoms [%[A]q(x)] (§VII-D).

    Compilation targets the SLDNF engine: [∀(F2 → F3)] becomes
    [forall(G2, G3)], i.e. "no solution of G2 fails G3" via double
    negation as failure — the standard Prolog rendering; [not] becomes
    negation as failure. The {!check_safety}
    analysis enforces the range-restriction discipline that makes these
    sound: every variable consumed by a test, negation or universal guard
    must be bound by a preceding positive atom, and every variable exported
    to the rule head must be bound by a positive atom on every disjunct. *)

open Gdp_logic

type t =
  | Atom of Gfact.t  (** a fact pattern *)
  | Acc of Gfact.t * Term.t
      (** the unified fuzzy operator: pattern realised with maximal
          accuracy bound to the second argument *)
  | Test of Term.t
      (** builtin/semantic-domain test, e.g. [X > 5], [dist(P1, P2, D)] *)
  | And of t * t
  | Or of t * t
  | Forall of t * t  (** [∀(guard → conclusion)] *)
  | Not of t

val conj : t list -> t
(** Right-nested conjunction; raises [Invalid_argument] on []. *)

val atom : Gfact.t -> t
val test : Term.t -> t

(** {1 Static checks} *)

type safety_error = {
  message : string;
  offending : Term.var list;
}

val check_safety : head_vars:Term.var list -> t -> (unit, safety_error) result
(** Left-to-right boundness analysis. Rejected:
    - a head variable not bound on every positive path of the body;
    - an arithmetic comparison consuming variables never bound earlier.
    Positive atoms, [Acc] atoms and non-comparison tests bind all their
    variables (tests have unknown output positions, so this follows
    Prolog practice — an insufficiently instantiated builtin call fails
    softly at run time); [Not] and [Forall] export no bindings. *)

val free_vars : t -> Term.var list
(** In first-occurrence order. *)

(** {1 Compilation} *)

val to_goals : default_model:string -> t -> Term.t list
(** Engine goals, in formula order. *)

val pp : Format.formatter -> t -> unit
