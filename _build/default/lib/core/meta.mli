(** The built-in meta-model library (§IV): packaged rules of reasoning
    about space, time and accuracy, stated as clause schemata over the
    reified representation and "activated on demand" by naming them in the
    meta-view at compile time.

    Every function returns a {!Spec.meta_model}; register the ones a
    specification wants available with {!Spec.add_meta_model} (or
    {!install_standard}), then select per compilation via
    [Compile.compile ~meta_view].

    Termination notes. The rule sets are written with guard literals
    ([ground/1], [nonvar/1]) and strict-refinement enumeration so that each
    meta-model terminates on the documented query modes. The one genuinely
    mutually-recursive pair — area-uniform downward inheritance
    ({!spatial_uniform}) together with upward acquisition
    ({!spatial_uniform_up}) — is marked [needs_loop_check]; {!Query} turns
    on the engine's ancestor check automatically when such a meta-model is
    active. *)

open Gdp_logic

val contradiction : unit -> Spec.meta_model
(** §IV-B: "no fact may be both true and false" —
    [M'Q(true)(X) ∧ M'Q(false)(X) ⇒ M'ERROR(contradiction, Q, X)], with
    the two facts sharing spatial and temporal qualification. *)

val cwa : unit -> Spec.meta_model
(** §IV-A: the closed world assumption for unary, value-free predicates:
    [M'Q(X) ⇒ M'Q(true)(X)] and
    [MODEL(M) ∧ PREDICATE(Q) ∧ OBJECT(X) ∧ not M'Q(true)(X) ⇒
    M'Q(false)(X)]. Quantifies over the compiler-emitted [model/1],
    [pred/3] and [obj/1] generators. *)

val spatial_simple : unit -> Spec.meta_model
(** §V-C simple spatial operator: space-independent facts are true at
    every (ground) point. *)

val spatial_uniform : unit -> Spec.meta_model
(** §V-C area-uniform operator, derivation direction: the property is true
    at all points of the patch, and is inherited by the higher-resolution
    subareas of a low-resolution area. *)

val spatial_uniform_up : unit -> Spec.meta_model
(** §V-C area-uniform operator, acquisition direction: a low-resolution
    area acquires a property shared by all of its high-resolution
    subareas. [needs_loop_check]. *)

val spatial_sampled : unit -> Spec.meta_model
(** §V-C area-sampled operator: an area acquires a sample from any point
    or any subarea. *)

val spatial_averaged : unit -> Spec.meta_model
(** §V-C area-average operator: averages over uniform (or averaged)
    single-value facts of the subareas, requiring a value for every
    subarea ("the average may be computed if values are known for each
    subarea"). *)

val point_type : unit -> Spec.meta_model
(** §V-D's first geometric-property definition: an object is a point-type
    feature when all its position-dependent properties are realised at a
    single point. *)

val overlap : unit -> Spec.meta_model
(** §V-D: two objects overlap when position-dependent properties of both
    are realised at the same point (space-independent facts are excluded
    by construction — they carry no [at] qualifier). *)

val temporal_simple : unit -> Spec.meta_model
(** §VI: time-independent facts are true at every (ground) instant. *)

val temporal_uniform : unit -> Spec.meta_model
(** §VI-B interval-uniform operator: expansion to member instants and
    inheritance by subintervals. *)

val temporal_sampled : unit -> Spec.meta_model
(** §VI interval-sampled operator. *)

val temporal_averaged : unit -> Spec.meta_model
(** §VI interval-average operator [&a]: the mean of an object's
    single-value instant observations inside the interval (at least one
    observation required). *)

val temporal_comprehension : unit -> Spec.meta_model
(** §VI-B comprehension principle: an instant observation inside the
    interval of interest licenses interval-uniform truth. *)

val temporal_continuity : unit -> Spec.meta_model
(** §VI-B continuity assumption for single-value facts: a value holds
    uniformly over [T1, T2) when observed at T1, re-observed at T2 and
    never contradicted strictly in between. *)

val temporal_persistence : unit -> Spec.meta_model
(** §I's introductory meta-fact: "a fact known to be true at t0 is still
    true at some later time t1 if no conflicting fact is known to be true
    between t0 and t1" — bounded above by the clock's present. *)

val temporal_cyclic : unit -> Spec.meta_model
(** The cyclic extension of the interval-uniform operator that §VI-B
    mentions without describing: a fact qualified [cyc(Period, Iv)]
    (surface syntax [&c[period] interval]) is realised at every instant
    whose phase [T mod Period] lies in the phase interval. *)

val temporal_now : unit -> Spec.meta_model
(** §VI-B: [&now Q(X) ∧ present(T) ⇒ &T Q(X)]. *)

val fuzzy_unified_max : unit -> Spec.meta_model
(** §VII-D default unified fuzzy operator: [%[A]] is the {e highest}
    accuracy assigned to a fact. *)

val fuzzy_unified_min : unit -> Spec.meta_model
val fuzzy_unified_avg : unit -> Spec.meta_model
(** Alternative unified operators the paper suggests "may be needed for
    specific types of facts". *)

val fuzzy_threshold : model:string -> threshold:float -> Spec.meta_model
(** §VII-C: facts whose unified accuracy strictly exceeds the threshold
    are realised (crisply) in the target model. *)

val fuzzy_propagation_name : string
(** Activating a meta-model with this name makes the compiler emit, for
    every virtual-fact definition, the mechanical accuracy-propagation
    companion clause of §VII-F ([(∀Xi) F(Xi) ∧ A = AC(F(Xi)) ⇒ %A q(Xk)]).
    The meta-model itself carries no clauses. *)

val fuzzy_propagation : unit -> Spec.meta_model

val sorts : Spec.t -> Spec.meta_model
(** §III-C many-sorted logic: one constraint clause per declared value
    position, flagging [ERROR(bad_sort, Q, V)] when a value falls outside
    its declared semantic domain. Generated from the spec's signatures —
    the compiler regenerates it at compile time, so registration order
    does not matter. *)

(** {1 Abstraction-rule combinators (§V-D)}

    The four rule families for interpreting data at lower resolution.
    Each returns a meta-model specific to a predicate (and optionally a
    resolution pair), mirroring how the paper's rules name concrete
    predicates ([island], [shore-line]). Passing [None] for a resolution
    leaves it universally quantified over declared spaces. *)

val copying :
  ?name:string -> pred:string -> ?fine:string -> ?coarse:string -> unit -> Spec.meta_model
(** A sampled fact at the fine resolution is copied to the coarse cell it
    falls in. *)

val thresholding :
  ?name:string ->
  pred:string ->
  ?fine:string ->
  ?coarse:string ->
  min_cells:int ->
  unit ->
  Spec.meta_model
(** The island example: the copy happens only when the feature covers
    strictly more than [min_cells] distinct fine cells ([size(X, R2) >
    delta]). *)

val averaging :
  ?name:string -> pred:string -> ?fine:string -> ?coarse:string -> unit -> Spec.meta_model
(** Per-predicate restriction of {!spatial_averaged}. *)

val composition :
  ?name:string ->
  a:string ->
  b:string ->
  result:string ->
  ?fine:string ->
  ?coarse:string ->
  unit ->
  Spec.meta_model
(** The shore-line example: when point facts [a] and [b] (same object)
    fall in one coarse cell, derive [result] at that cell's
    representative point. *)

(** {1 Spatial-relation combinators (§V-D)}

    "Spatial relations between objects cover concepts such as relative
    position, relative orientation, relative size, adjacency (usually, at
    some given resolution), and overlap." Each combinator derives a
    binary relation between objects from their point facts. *)

val adjacency :
  ?name:string -> located:string -> resolution:string -> max_gap:float -> unit ->
  Spec.meta_model
(** [adjacent(X, Y)] when an [located] point of X and one of Y fall in
    distinct cells of the named resolution whose representative points
    are at most [max_gap] apart (typically the cell size, for 4-adjacency,
    or cell size × √2 for 8-adjacency). *)

val relative_position : ?name:string -> located:string -> unit -> Spec.meta_model
(** [north_of/south_of/east_of/west_of(X, Y)] by the direction from Y's
    point to X's point, quadrant convention counterclockwise from +x. *)

val relative_size : ?name:string -> pred:string -> resolution:string -> unit -> Spec.meta_model
(** [larger_than(X, Y)] when X's [pred] samples cover strictly more
    distinct cells of the resolution than Y's — the paper's [size]
    function applied pairwise. *)

val install_standard : Spec.t -> unit
(** Register every parameterless meta-model above (including {!sorts},
    which snapshots the spec's current signatures) under its canonical
    name. *)

val standard_names : string list

val clause_of_string : string -> Database.clause
(** Helper for user-defined meta-models: parse one clause over the
    reified vocabulary, e.g.
    ["holds(M, open, [], [X], S, T) :- holds(M, repaired, [], [X], S, T)."]. *)
