(** Comparing alternate views of the same specification.

    §IV-D motivates the meta-view as the means "to compare alternate
    formalizations of the semantic domains"; §III-E makes consistency
    relative to the world view. This module mechanises both comparisons:
    evaluate a set of probe patterns under two view selections and report
    what is realised in one but not the other. *)

type selection = {
  sel_name : string;  (** label used in reports *)
  sel_models : string list option;  (** [None] = all declared models *)
  sel_metas : string list;
}

type difference = {
  probe : Gfact.t;  (** the probe pattern the answers instantiate *)
  only_left : Gfact.t list;  (** realised under the left view only *)
  only_right : Gfact.t list;
  both : int;  (** number of shared answers *)
}

type report = {
  left : selection;
  right : selection;
  differences : difference list;  (** one per probe, probe order *)
  left_violations : Query.violation list;
  right_violations : Query.violation list;
}

val views :
  ?max_depth:int ->
  ?limit:int ->
  Spec.t ->
  left:selection ->
  right:selection ->
  probes:Gfact.t list ->
  report
(** Compile the specification once per selection and evaluate every probe
    under both. [limit] (default 1000) bounds answers per probe per side. *)

val agreement : report -> bool
(** No probe differs and the views' violation sets coincide. *)

val pp : Format.formatter -> report -> unit
(** Human-readable summary: per-probe differences, then the two views'
    violations. *)
