(** GDP facts and fact patterns.

    A fact asserts that predicate [pred], applied to semantic-domain
    [values] and object designators [objects], is realised in model
    [model], possibly qualified by position (§V) and time (§VI):

    {v m'q(v1, ..., vk)(o1, ..., on)  [@ spatial] [& temporal] v}

    A {e pattern} is the same shape with engine variables allowed in any
    position — the form used in rule bodies, rule heads and queries. A
    ground pattern is a fact. *)

open Gdp_logic

(** Spatial qualification (§V-C): where the fact is realised. *)
type spatial =
  | S_everywhere  (** space-independent: true at every point (paper §V-C) *)
  | S_at of Term.t  (** [@p] — at a position *)
  | S_uniform of Term.t * Term.t  (** [@u[R]p] — everywhere in the patch *)
  | S_sampled of Term.t * Term.t  (** [@s[R]p] — somewhere in the patch *)
  | S_averaged of Term.t * Term.t  (** [@a[R]p] — on average over the patch *)
  | S_var of Term.t  (** a variable over whole spatial qualifiers *)

(** Temporal qualification (§VI): when the fact is realised. *)
type temporal =
  | T_always  (** time-independent *)
  | T_at of Term.t  (** [&t] *)
  | T_uniform of Term.t  (** [&u[interval]] *)
  | T_sampled of Term.t  (** [&s[interval]] *)
  | T_averaged of Term.t  (** [&a[interval]] *)
  | T_var of Term.t  (** a variable over whole temporal qualifiers *)

type t = {
  model : Term.t option;
      (** [None]: the enclosing model (or the default model [w]); explicit
          qualification [m'q] sets [Some (Atom m)]; meta-rules use
          [Some (Var _)]. *)
  pred : Term.t;  (** atom, or variable in meta-rules *)
  values : Term.t list;
  objects : Term.t list;
  space : spatial;
  time : temporal;
}

val make :
  ?model:string ->
  ?values:Term.t list ->
  ?objects:Term.t list ->
  ?space:spatial ->
  ?time:temporal ->
  string ->
  t
(** [make q] — an unqualified, space/time-independent pattern. *)

val is_ground : t -> bool

(** {1 Position and interval embeddings} *)

val pos_term : Gdp_space.Point.t -> Term.t
val pos_of_term : Term.t -> Gdp_space.Point.t option
val interval_term : Gdp_temporal.Interval.t -> Term.t

val interval_of_term : ?clock:Gdp_temporal.Clock.t -> Term.t -> Gdp_temporal.Interval.t option
(** Decodes [iv(L, U)] bounds [incl(T)], [excl(T)], [inf]. Bound instants
    may be the atom [now] or [now + D]/[now - D] expressions when a clock
    is supplied. *)

(** {1 Reification} *)

val spatial_term : spatial -> Term.t
val temporal_term : temporal -> Term.t
val spatial_of_term : Term.t -> spatial
val temporal_of_term : Term.t -> temporal

val to_holds : default_model:string -> t -> Term.t
(** The reified [holds/6] term for this pattern. *)

val to_acc : default_model:string -> t -> Term.t -> Term.t
(** [to_acc ~default_model p a] — the [acc/7] term with accuracy [a]. *)

val to_acc_max : default_model:string -> t -> Term.t -> Term.t
(** The [acc_max/7] term: the unified fuzzy operator [%[A]]. *)

val of_holds : Term.t -> t option
(** Inverse of {!to_holds} on well-shaped [holds/6] terms. *)

val vars : t -> Term.var list
val pp : Format.formatter -> t -> unit
