(** Static validation of a specification — the requirements-review aid the
    paper motivates: explicit world knowledge "is expected to reduce the
    occurrence of inconsistencies in the requirements specification"
    (§III). The linter finds the mistakes the type-level checks cannot:
    names that are declared but never used, used but never declared, and
    rules that can never fire.

    The checks are heuristic in one documented way: a meta-model can
    realise facts for otherwise-undefined predicates (e.g. [cwa] deriving
    truth-valued facts), so "undefined predicate" findings are warnings,
    not errors. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. "undeclared-object" *)
  message : string;
  context : string;  (** model or rule the finding anchors to, "" if global *)
}

val lint : Spec.t -> finding list
(** All findings, errors first, deterministic order. Performed checks:

    - [undeclared-object] (Warning): a fact references an object-position
      atom that was never declared (only when at least one object is
      declared — specifications may choose not to declare objects at all);
    - [unused-object] (Info): declared but never referenced in any model;
    - [undeclared-predicate] (Info): a predicate is used while other
      predicates have signatures — likely a missing declaration or typo;
    - [unknown-space] (Error): a spatial qualifier or a
      [res_*]/[region_reps] test references an undeclared logical space;
    - [unknown-region] (Error): a [region_mem]/[region_reps] test
      references an undeclared region;
    - [undefined-predicate] (Warning): a rule or constraint body uses a
      predicate with no basic facts and no defining rule in any model;
    - [unused-domain] (Info): a declared semantic domain appears in no
      predicate signature;
    - [empty-model] (Info): a declared model carries no facts, rules or
      constraints;
    - [accuracy-without-fact] (Info): an accuracy statement qualifies a
      fact never asserted plainly — §VII-C notes the usual pattern is
      that "each fact for which an accuracy is specified also exists
      without any accuracy";
    - [constraint-violation] (Warning): the specification declares
      constraints and its default world view lies in the bottom-up
      Datalog fragment, and materialising it derives an [ERROR] fact —
      the inconsistency itself, found by exhaustive sweep rather than
      static inspection. Specifications outside the fragment skip this
      check silently (run [gdprs check --materialize] for the hard
      error). *)

val has_errors : finding list -> bool
val pp_finding : Format.formatter -> finding -> unit
val pp_severity : Format.formatter -> severity -> unit
