open Gdp_logic

type selection = {
  sel_name : string;
  sel_models : string list option;
  sel_metas : string list;
}

type difference = {
  probe : Gfact.t;
  only_left : Gfact.t list;
  only_right : Gfact.t list;
  both : int;
}

type report = {
  left : selection;
  right : selection;
  differences : difference list;
  left_violations : Query.violation list;
  right_violations : Query.violation list;
}

let key f = Term.to_string (Gfact.to_holds ~default_model:Names.default_model f)

let views ?max_depth ?(limit = 1000) spec ~left ~right ~probes =
  let query_of sel =
    Query.create spec ?world_view:sel.sel_models ~meta_view:sel.sel_metas ?max_depth
  in
  let ql = query_of left and qr = query_of right in
  let differences =
    List.map
      (fun probe ->
        let al = Query.solutions ~limit ql probe
        and ar = Query.solutions ~limit qr probe in
        let kl = List.map key al and kr = List.map key ar in
        let only_left = List.filter (fun f -> not (List.mem (key f) kr)) al in
        let only_right = List.filter (fun f -> not (List.mem (key f) kl)) ar in
        let both = List.length al - List.length only_left in
        { probe; only_left; only_right; both })
      probes
  in
  {
    left;
    right;
    differences;
    left_violations = Query.violations ql;
    right_violations = Query.violations qr;
  }

let agreement r =
  List.for_all (fun d -> d.only_left = [] && d.only_right = []) r.differences
  && r.left_violations = r.right_violations

let pp ppf r =
  Format.fprintf ppf "@[<v>comparing '%s' vs '%s'@," r.left.sel_name r.right.sel_name;
  List.iter
    (fun d ->
      Format.fprintf ppf "probe %a: %d shared" Gfact.pp d.probe d.both;
      if d.only_left = [] && d.only_right = [] then Format.fprintf ppf " (agree)@,"
      else begin
        Format.fprintf ppf "@,";
        List.iter
          (fun f -> Format.fprintf ppf "  only in %s: %a@," r.left.sel_name Gfact.pp f)
          d.only_left;
        List.iter
          (fun f -> Format.fprintf ppf "  only in %s: %a@," r.right.sel_name Gfact.pp f)
          d.only_right
      end)
    r.differences;
  let pp_viols name = function
    | [] -> Format.fprintf ppf "%s: consistent@," name
    | viols ->
        Format.fprintf ppf "%s: %d violation(s)@," name (List.length viols);
        List.iter (fun v -> Format.fprintf ppf "  %a@," Query.pp_violation v) viols
  in
  pp_viols r.left.sel_name r.left_violations;
  pp_viols r.right.sel_name r.right_violations;
  Format.fprintf ppf "@]"
