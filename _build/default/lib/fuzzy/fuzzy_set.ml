type t = float -> Truth.t

let membership s x = s x

let check_order name xs =
  let rec ok = function
    | a :: (b :: _ as rest) -> a <= b && ok rest
    | _ -> true
  in
  if not (ok xs) then invalid_arg (name ^ ": breakpoints must be non-decreasing")

let triangular ~a ~b ~c =
  check_order "Fuzzy_set.triangular" [ a; b; c ];
  fun x ->
    Truth.clamp
      (if x <= a || x >= c then 0.0
       else if x = b then 1.0
       else if x < b then (x -. a) /. (b -. a)
       else (c -. x) /. (c -. b))

let trapezoidal ~a ~b ~c ~d =
  check_order "Fuzzy_set.trapezoidal" [ a; b; c; d ];
  fun x ->
    Truth.clamp
      (if x <= a || x >= d then 0.0
       else if x >= b && x <= c then 1.0
       else if x < b then (x -. a) /. (b -. a)
       else (d -. x) /. (d -. c))

let gaussian ~mean ~sigma =
  if sigma <= 0.0 then invalid_arg "Fuzzy_set.gaussian: sigma must be positive";
  fun x ->
    let d = (x -. mean) /. sigma in
    Truth.clamp (exp (-0.5 *. d *. d))

let sigmoid ~midpoint ~slope =
 fun x -> Truth.clamp (1.0 /. (1.0 +. exp (-.slope *. (x -. midpoint))))

let crisp pred x = Truth.of_bool (pred x)
let complement s x = Algebra.neg (s x)
let union ?(family = Algebra.Min_max) s1 s2 x = Algebra.disj family (s1 x) (s2 x)

let intersection ?(family = Algebra.Min_max) s1 s2 x =
  Algebra.conj family (s1 x) (s2 x)

let very s x =
  let m = Truth.to_float (s x) in
  Truth.v (m *. m)

let somewhat s x = Truth.v (sqrt (Truth.to_float (s x)))
let alpha_cut s ~alpha x = Truth.to_float (s x) >= alpha
let support s ~samples = List.filter (fun x -> Truth.to_float (s x) > 0.0) samples

let defuzzify_centroid s ~lo ~hi ~steps =
  if steps <= 0 || hi <= lo then None
  else begin
    let dx = (hi -. lo) /. float_of_int steps in
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to steps - 1 do
      let x = lo +. ((float_of_int i +. 0.5) *. dx) in
      let m = Truth.to_float (s x) in
      num := !num +. (x *. m);
      den := !den +. m
    done;
    if !den = 0.0 then None else Some (!num /. !den)
  end
