(** Uncertainty-level propagation: the paper's [AC] function (§VII-F),
    defined structurally over instantiated formulas of the restricted
    grammar [F].

    The formula shape mirrors §III-A after instantiation: by the time
    accuracy is propagated, the inference engine has already enumerated the
    instances of every bounded universal quantification, so [Forall] holds
    the finite list of (guard, conclusion) instance pairs, and [Not_provable]
    records whether the negated subformula turned out provable. *)

type 'atom formula =
  | Atom of 'atom
  | And of 'atom formula * 'atom formula
  | Or of 'atom formula * 'atom formula
  | Forall of 'atom formula * ('atom formula * 'atom formula) list
      (** [F1 ∧ (∀Xj)(F2 → F3)]: the positive part and the instance pairs *)
  | Not_provable of 'atom formula * bool
      (** [F1 ∧ not F2]: the positive part and whether F2 was provable *)

type 'atom oracle = 'atom -> Truth.t option
(** Accuracy of an atomic fact; [None] means the fact (with any accuracy)
    is not provable, which makes the whole computation fail. *)

val ac : ?family:Algebra.family -> 'atom oracle -> 'atom formula -> Truth.t option
(** The paper's default rules (for [Min_max]; other families substitute
    their connectives uniformly):
    - atom: the oracle's accuracy, failure if not provable;
    - [F1 ∧ F2]: min;  [F1 ∨ F2]: max;
    - [F1 ∧ ∀(F2→F3)]: [min(AC F1, inf over instances of
      max(1 − AC F2, AC F3))];
    - [F1 ∧ not F2]: [min(AC F1, 1)] when F2 is not provable, failure when
      it is.

    Guarantees (tested): if every atom is classical (accuracy 0 or 1) the
    result agrees with two-valued logic; the result never exceeds the
    accuracy that full dependency analysis would give (conservativeness:
    the min–max result is a lower bound on any consistent assignment). *)

val map : ('a -> 'b) -> 'a formula -> 'b formula
val atoms : 'a formula -> 'a list
(** All atoms, left-to-right, including those inside quantifier instances. *)

val size : 'a formula -> int
(** Number of constructors — used by property tests and benches. *)
