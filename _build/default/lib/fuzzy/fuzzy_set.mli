(** Fuzzy sets over the real line — membership functions in the sense of
    Zadeh (the paper's [10]). Not used by the core propagation machinery;
    provided for formalizations that want graded semantic-domain predicates
    such as "large city" or "deep water" (§I's large-city example is
    naturally fuzzy). *)

type t

val membership : t -> float -> Truth.t

val triangular : a:float -> b:float -> c:float -> t
(** 0 at [a], rising to 1 at [b], back to 0 at [c]; requires a ≤ b ≤ c. *)

val trapezoidal : a:float -> b:float -> c:float -> d:float -> t
(** 0 at [a], 1 on [b, c], 0 at [d]; requires a ≤ b ≤ c ≤ d. *)

val gaussian : mean:float -> sigma:float -> t
(** exp(−(x−μ)²/2σ²); requires σ > 0. *)

val sigmoid : midpoint:float -> slope:float -> t
(** 1 / (1 + exp(−slope·(x−midpoint))). A rising edge for "at least
    roughly m" predicates (e.g. population of a large city). *)

val crisp : (float -> bool) -> t
(** Characteristic function of an ordinary set. *)

val complement : t -> t
val union : ?family:Algebra.family -> t -> t -> t
val intersection : ?family:Algebra.family -> t -> t -> t

val very : t -> t
(** Concentration hedge: membership squared. *)

val somewhat : t -> t
(** Dilation hedge: square root of membership. *)

val alpha_cut : t -> alpha:float -> float -> bool
(** [alpha_cut s ~alpha x] — is membership of [x] ≥ alpha? *)

val support : t -> samples:float list -> float list
(** Sample points with non-zero membership. *)

val defuzzify_centroid : t -> lo:float -> hi:float -> steps:int -> float option
(** Centre-of-gravity over [lo, hi] by midpoint sampling; [None] when the
    sampled mass is zero. *)
