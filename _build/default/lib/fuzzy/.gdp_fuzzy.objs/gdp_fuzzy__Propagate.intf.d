lib/fuzzy/propagate.mli: Algebra Truth
