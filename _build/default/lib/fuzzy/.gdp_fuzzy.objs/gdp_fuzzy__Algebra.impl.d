lib/fuzzy/algebra.ml: Float Format List Truth
