lib/fuzzy/fuzzy_set.ml: Algebra List Truth
