lib/fuzzy/truth.mli: Format
