lib/fuzzy/propagate.ml: Algebra List Truth
