lib/fuzzy/fuzzy_set.mli: Algebra Truth
