lib/fuzzy/truth.ml: Float Format Printf
