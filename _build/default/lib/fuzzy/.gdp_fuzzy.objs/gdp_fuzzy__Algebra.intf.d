lib/fuzzy/algebra.mli: Format Truth
