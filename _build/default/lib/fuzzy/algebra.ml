type family = Min_max | Product | Lukasiewicz

let neg a = Truth.v (1.0 -. Truth.to_float a)

let conj family a b =
  let x = Truth.to_float a and y = Truth.to_float b in
  Truth.v
    (match family with
    | Min_max -> Float.min x y
    | Product -> x *. y
    | Lukasiewicz -> Float.max 0.0 (x +. y -. 1.0))

let disj family a b =
  let x = Truth.to_float a and y = Truth.to_float b in
  Truth.v
    (match family with
    | Min_max -> Float.max x y
    | Product -> x +. y -. (x *. y)
    | Lukasiewicz -> Float.min 1.0 (x +. y))

let implies family a b = disj family (neg a) b

let forall family = List.fold_left (conj family) Truth.absolutely_true
let exists family = List.fold_left (disj family) Truth.absolutely_false

let truth_table_consistent family =
  let t = Truth.absolutely_true and f = Truth.absolutely_false in
  let cases = [ (t, t); (t, f); (f, t); (f, f) ] in
  List.for_all
    (fun (a, b) ->
      let ba = Truth.to_float a = 1.0 and bb = Truth.to_float b = 1.0 in
      Truth.to_float (conj family a b) = Truth.to_float (Truth.of_bool (ba && bb))
      && Truth.to_float (disj family a b) = Truth.to_float (Truth.of_bool (ba || bb)))
    cases
  && Truth.to_float (neg t) = 0.0
  && Truth.to_float (neg f) = 1.0

let pp_family ppf = function
  | Min_max -> Format.pp_print_string ppf "min-max"
  | Product -> Format.pp_print_string ppf "product"
  | Lukasiewicz -> Format.pp_print_string ppf "lukasiewicz"

let family_of_string = function
  | "min-max" | "min_max" | "minmax" | "godel" -> Some Min_max
  | "product" -> Some Product
  | "lukasiewicz" -> Some Lukasiewicz
  | _ -> None
