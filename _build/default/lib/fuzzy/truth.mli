(** Fuzzy truth values: the closed interval [0, 1] (§VII-A).

    Zero is interpreted as absolutely false, one as absolutely true, and
    values in between as degrees of truth. *)

type t = private float

val v : float -> t
(** Raises [Invalid_argument] on NaN or values outside [0, 1]. *)

val clamp : float -> t
(** Clamp into [0, 1]; NaN still raises. *)

val to_float : t -> float
val absolutely_true : t
val absolutely_false : t

val is_absolute : t -> bool
(** [true] iff the value is exactly 0 or 1, i.e. classical. *)

val of_bool : bool -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val exceeds : t -> threshold:float -> bool
(** Strictly greater than the threshold — the test used by threshold
    meta-models (§VII-C). *)

val pp : Format.formatter -> t -> unit
