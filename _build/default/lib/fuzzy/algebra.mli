(** Families of fuzzy connectives.

    The paper's default is the min–max rule (§VII-A) and notes it "is not
    the only rule that may be used in fuzzy logic"; alternate t-norm /
    t-conorm pairs are provided so a meta-model can swap the rules of
    accuracy reasoning without touching the rest of a formalization. *)

type family =
  | Min_max  (** Gödel: a∧b = min, a∨b = max — the paper's table *)
  | Product  (** a∧b = ab, a∨b = a+b−ab *)
  | Lukasiewicz  (** a∧b = max(0, a+b−1), a∨b = min(1, a+b) *)

val neg : Truth.t -> Truth.t
(** 1 − a, shared by all three families. *)

val conj : family -> Truth.t -> Truth.t -> Truth.t
val disj : family -> Truth.t -> Truth.t -> Truth.t

val implies : family -> Truth.t -> Truth.t -> Truth.t
(** The S-implication [disj family (neg a) b]; for [Min_max] this is the
    Kleene–Dienes [max(1−a, b)] used in the paper's AC rule for bounded
    universal quantification (§VII-F). *)

val forall : family -> Truth.t list -> Truth.t
(** Infimum under the family's conjunction: the truth of [(∀X) F(X)] over
    the (finite) instance list; the empty list is absolutely true. *)

val exists : family -> Truth.t list -> Truth.t
(** Supremum counterpart; the empty list is absolutely false. *)

val truth_table_consistent : family -> bool
(** Sanity check used by tests: on classical inputs {0, 1} the family
    agrees with two-valued logic (the paper's compatibility remark). *)

val pp_family : Format.formatter -> family -> unit
val family_of_string : string -> family option
