type 'atom formula =
  | Atom of 'atom
  | And of 'atom formula * 'atom formula
  | Or of 'atom formula * 'atom formula
  | Forall of 'atom formula * ('atom formula * 'atom formula) list
  | Not_provable of 'atom formula * bool

type 'atom oracle = 'atom -> Truth.t option

(* Inside a quantifier instance the open-world reading applies: an
   unprovable guard makes the implication vacuously true, an unprovable
   conclusion under a provable guard counts as accuracy 0 — the
   conservative completion of the paper's table. *)
let rec ac ?(family = Algebra.Min_max) oracle f =
  match f with
  | Atom a -> oracle a
  | And (f1, f2) -> (
      match (ac ~family oracle f1, ac ~family oracle f2) with
      | Some a, Some b -> Some (Algebra.conj family a b)
      | _ -> None)
  | Or (f1, f2) -> (
      match (ac ~family oracle f1, ac ~family oracle f2) with
      | Some a, Some b -> Some (Algebra.disj family a b)
      | Some a, None | None, Some a -> Some a
      | None, None -> None)
  | Forall (f1, instances) -> (
      match ac ~family oracle f1 with
      | None -> None
      | Some a1 ->
          let instance_truth (guard, concl) =
            match ac ~family oracle guard with
            | None -> Truth.absolutely_true
            | Some g -> (
                match ac ~family oracle concl with
                | None -> Algebra.neg g
                | Some c -> Algebra.implies family g c)
          in
          let body = Algebra.forall family (List.map instance_truth instances) in
          Some (Algebra.conj family a1 body))
  | Not_provable (f1, provable) ->
      if provable then None
      else
        (* min(AC F1, 1) = AC F1 *)
        ac ~family oracle f1

let rec map g = function
  | Atom a -> Atom (g a)
  | And (a, b) -> And (map g a, map g b)
  | Or (a, b) -> Or (map g a, map g b)
  | Forall (a, instances) ->
      Forall (map g a, List.map (fun (x, y) -> (map g x, map g y)) instances)
  | Not_provable (a, p) -> Not_provable (map g a, p)

let atoms f =
  let rec go acc = function
    | Atom a -> a :: acc
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Forall (a, instances) ->
        List.fold_left (fun acc (x, y) -> go (go acc x) y) (go acc a) instances
    | Not_provable (a, _) -> go acc a
  in
  List.rev (go [] f)

let rec size = function
  | Atom _ -> 1
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Forall (a, instances) ->
      1 + size a
      + List.fold_left (fun acc (x, y) -> acc + size x + size y) 0 instances
  | Not_provable (a, _) -> 1 + size a
