type t = float

let v f =
  if Float.is_nan f then invalid_arg "Truth.v: NaN"
  else if f < 0.0 || f > 1.0 then
    invalid_arg (Printf.sprintf "Truth.v: %g outside [0, 1]" f)
  else f

let clamp f =
  if Float.is_nan f then invalid_arg "Truth.clamp: NaN"
  else Float.min 1.0 (Float.max 0.0 f)

let to_float f = f
let absolutely_true = 1.0
let absolutely_false = 0.0
let is_absolute f = f = 0.0 || f = 1.0
let of_bool b = if b then 1.0 else 0.0
let equal = Float.equal
let compare = Float.compare
let exceeds f ~threshold = f > threshold
let pp ppf f = Format.fprintf ppf "%.3f" f
