(** Graphical rendering of logical information (§I): paint the answers of
    GDP queries over a logical space onto a raster, one pixel (or square
    of pixels) per resolution cell.

    A layer decides the color of a cell from the compiled specification;
    layers later in the list paint over earlier ones. Rendering never
    mutates the specification — it is exactly the prototype's read-only
    display path. *)

open Gdp_core

type value_pattern = { pattern : Gfact.t; value_var : Gdp_logic.Term.t }
(** A fact pattern together with the variable standing for the numeric
    value to visualise (the variable must occur in the pattern). *)

type layer

val layer :
  name:string -> (Query.t -> Gdp_space.Point.t -> Color.t option) -> layer
(** Fully general layer: return [None] to leave the cell unpainted. *)

val presence :
  name:string -> ?color:Color.t -> (Gdp_space.Point.t -> Gfact.t) -> layer
(** Paint cells where the pattern built at the cell's representative point
    is provable (default color {!Color.red}). *)

val value :
  name:string ->
  ?colormap:(float -> Color.t) ->
  lo:float ->
  hi:float ->
  (Gdp_space.Point.t -> value_pattern) ->
  layer
(** Paint cells by a numeric value: the first solution's value is
    normalised into [lo, hi] and mapped through the colormap (default
    {!Color.terrain}). *)

val accuracy_layer :
  name:string ->
  ?colormap:(float -> Color.t) ->
  (Gdp_space.Point.t -> Gfact.t) ->
  layer
(** Paint cells by the unified accuracy of the pattern (default colormap
    {!Color.heat}) — §VII rendered visibly. *)

val layer_name : layer -> string

val render :
  Query.t ->
  resolution:string ->
  region:Gdp_space.Region.t ->
  ?background:Color.t ->
  ?cell_px:int ->
  layer list ->
  Framebuffer.t
(** Raises [Invalid_argument] when the resolution name is not declared in
    the specification or the region has no bounding box. [cell_px]
    (default 1) scales each cell to a square of pixels. North is up: the
    region's maximal y maps to pixel row 0. *)

val legend : layer list -> string
(** One line per layer. *)
