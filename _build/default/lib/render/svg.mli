(** Vector rendering of framebuffers and map layers: standalone SVG
    documents with an optional legend — the publication-quality
    counterpart of the PPM raster path. *)

val of_framebuffer : ?scale:int -> ?legend:(string * Color.t) list -> Framebuffer.t -> string
(** One [<rect>] per run of equal-coloured pixels (row-wise run-length
    coalescing keeps documents small); [scale] (default 4) is the pixel
    edge in SVG units. The legend renders below the raster. Raises
    [Invalid_argument] when [scale <= 0]. *)

val write :
  ?scale:int -> ?legend:(string * Color.t) list -> Framebuffer.t -> string -> unit
(** Write to a file path. *)
