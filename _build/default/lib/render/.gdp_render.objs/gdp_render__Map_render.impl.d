lib/render/map_render.ml: Color Float Framebuffer Gdp_core Gdp_logic Gdp_space Gfact List Printf Query Spec String
