lib/render/svg.mli: Color Framebuffer
