lib/render/color.mli: Format
