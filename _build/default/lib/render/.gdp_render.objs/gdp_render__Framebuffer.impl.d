lib/render/framebuffer.ml: Array Buffer Char Color Fun Gdp_space Hashtbl List Option Printf String
