lib/render/svg.ml: Buffer Color Framebuffer Fun List Printf String
