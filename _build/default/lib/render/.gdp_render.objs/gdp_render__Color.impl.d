lib/render/color.ml: Array Float Format List
