lib/render/map_render.mli: Color Framebuffer Gdp_core Gdp_logic Gdp_space Gfact Query
