lib/render/framebuffer.mli: Color
