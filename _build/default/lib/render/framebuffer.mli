(** A software raster framebuffer — the reproduction's stand-in for the
    prototype's Gould DeAnza IP8500 display (DESIGN.md §2). Pixel (0, 0)
    is the top-left corner. *)

type t

val create : ?background:Color.t -> width:int -> height:int -> unit -> t
(** Raises [Invalid_argument] on non-positive dimensions. *)

val width : t -> int
val height : t -> int

val set : t -> int -> int -> Color.t -> unit
(** Out-of-bounds writes are silently clipped. *)

val get : t -> int -> int -> Color.t
(** Raises [Invalid_argument] out of bounds. *)

val fill : t -> Color.t -> unit
val fill_rect : t -> x:int -> y:int -> w:int -> h:int -> Color.t -> unit
val draw_line : t -> (int * int) -> (int * int) -> Color.t -> unit
val draw_circle : t -> cx:int -> cy:int -> r:int -> Color.t -> unit
(** Outline midpoint circle. *)

val blend : t -> int -> int -> Color.t -> alpha:float -> unit
(** Alpha-blend a color over the existing pixel. *)

val to_ppm : t -> string
(** Binary PPM (P6). *)

val write_ppm : t -> string -> unit
(** Write to a file path. *)

val to_ascii : ?chars:string -> t -> string
(** Luminance-mapped character art, one row per line — the quick-look
    rendering used in examples and the CLI. *)

val histogram : t -> (Color.t * int) list
(** Distinct colors with pixel counts, most frequent first. *)
