open Gdp_core

type value_pattern = { pattern : Gfact.t; value_var : Gdp_logic.Term.t }

type layer = {
  layer_name : string;
  paint : Query.t -> Gdp_space.Point.t -> Color.t option;
}

let layer ~name paint = { layer_name = name; paint }
let layer_name l = l.layer_name

let presence ~name ?(color = Color.red) build =
  {
    layer_name = name;
    paint = (fun q p -> if Query.holds q (build p) then Some color else None);
  }

let number_of = function
  | Gdp_logic.Term.Int n -> Some (float_of_int n)
  | Gdp_logic.Term.Float f -> Some f
  | _ -> None

let value ~name ?(colormap = Color.terrain) ~lo ~hi build =
  let span = hi -. lo in
  {
    layer_name = name;
    paint =
      (fun q p ->
        let { pattern; value_var } = build p in
        match Query.solutions ~limit:1 q pattern with
        | [] -> None
        | sol :: _ -> (
            (* recover the value binding by matching the original pattern
               against the instantiated solution *)
            let subst =
              Gdp_logic.Unify.unify Gdp_logic.Subst.empty
                (Gfact.to_holds ~default_model:"w" pattern)
                (Gfact.to_holds ~default_model:"w" sol)
            in
            match subst with
            | None -> None
            | Some s -> (
                match number_of (Gdp_logic.Subst.apply s value_var) with
                | None -> None
                | Some v ->
                    let u = if span = 0.0 then 0.5 else (v -. lo) /. span in
                    Some (colormap u))));
  }

let accuracy_layer ~name ?(colormap = Color.heat) build =
  {
    layer_name = name;
    paint =
      (fun q p ->
        match Query.accuracy q (build p) with
        | Some a -> Some (colormap a)
        | None -> None);
  }

let render q ~resolution ~region ?(background = Color.black) ?(cell_px = 1) layers =
  if cell_px <= 0 then invalid_arg "Map_render.render: cell_px must be positive";
  let spec = Query.spec q in
  let res =
    match Spec.find_space spec resolution with
    | Some r -> r
    | None ->
        invalid_arg
          (Printf.sprintf "Map_render.render: unknown resolution %s" resolution)
  in
  match Gdp_space.Region.bounding_box region with
  | None -> invalid_arg "Map_render.render: region has no bounding box"
  | Some (min_x, min_y, max_x, max_y) ->
      let module R = Gdp_space.Resolution in
      let i0, j0 = R.cell_index res (Gdp_space.Point.make min_x min_y) in
      (* a bbox corner exactly on a cell boundary belongs to the previous
         cell for the purpose of counting covered cells *)
      let upper_index v origin step lo =
        let scaled = (v -. origin) /. step in
        let idx = int_of_float (Float.floor scaled) in
        if Float.is_integer scaled && idx > lo then idx - 1 else idx
      in
      let i1 =
        upper_index max_x res.R.origin.Gdp_space.Point.x res.R.dx i0
      and j1 =
        upper_index max_y res.R.origin.Gdp_space.Point.y res.R.dy j0
      in
      let cols = i1 - i0 + 1 and rows = j1 - j0 + 1 in
      let fb =
        Framebuffer.create ~background ~width:(cols * cell_px)
          ~height:(rows * cell_px) ()
      in
      for j = j0 to j1 do
        for i = i0 to i1 do
          let cx =
            res.R.origin.Gdp_space.Point.x
            +. ((float_of_int i +. 0.5) *. res.R.dx)
          and cy =
            res.R.origin.Gdp_space.Point.y
            +. ((float_of_int j +. 0.5) *. res.R.dy)
          in
          let p = Gdp_space.Point.make cx cy in
          if Gdp_space.Region.mem p region then begin
            let color =
              List.fold_left
                (fun acc l -> match l.paint q p with Some c -> Some c | None -> acc)
                None layers
            in
            match color with
            | None -> ()
            | Some c ->
                (* north up: larger j (larger y) maps to smaller pixel row *)
                let px = (i - i0) * cell_px and py = (j1 - j) * cell_px in
                Framebuffer.fill_rect fb ~x:px ~y:py ~w:cell_px ~h:cell_px c
          end
        done
      done;
      fb

let legend layers =
  layers
  |> List.map (fun l -> Printf.sprintf "- %s" l.layer_name)
  |> String.concat "\n"
