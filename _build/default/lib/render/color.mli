(** RGB colors, ramps and palettes for map rendering. *)

type t = { r : int; g : int; b : int }
(** Channels in 0–255. *)

val v : int -> int -> int -> t
(** Clamps channels into range. *)

val black : t
val white : t
val red : t
val green : t
val blue : t
val yellow : t
val cyan : t
val magenta : t
val gray : int -> t

val lerp : t -> t -> float -> t
(** [lerp a b u], u clamped to [0, 1]. *)

val ramp : t list -> float -> t
(** Piecewise-linear ramp through the given stops over [0, 1]; raises
    [Invalid_argument] on an empty stop list. *)

val grayscale : float -> t
val terrain : float -> t
(** Deep blue → shallow cyan → green lowland → brown upland → white peak. *)

val heat : float -> t
(** Black → red → yellow → white. *)

val categorical : int -> t
(** A 12-color qualitative palette, cycling. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
