type t = { r : int; g : int; b : int }

let clamp c = max 0 (min 255 c)
let v r g b = { r = clamp r; g = clamp g; b = clamp b }
let black = v 0 0 0
let white = v 255 255 255
let red = v 220 50 47
let green = v 60 160 60
let blue = v 38 89 196
let yellow = v 230 200 40
let cyan = v 42 161 152
let magenta = v 211 54 130
let gray l = v l l l

let clamp01 u = Float.max 0.0 (Float.min 1.0 u)

let lerp a b u =
  let u = clamp01 u in
  let mix x y = int_of_float (Float.round (float_of_int x +. (u *. float_of_int (y - x)))) in
  v (mix a.r b.r) (mix a.g b.g) (mix a.b b.b)

let ramp stops u =
  match stops with
  | [] -> invalid_arg "Color.ramp: empty stop list"
  | [ c ] -> c
  | _ ->
      let u = clamp01 u in
      let n = List.length stops - 1 in
      let scaled = u *. float_of_int n in
      let i = min (n - 1) (int_of_float scaled) in
      let frac = scaled -. float_of_int i in
      lerp (List.nth stops i) (List.nth stops (i + 1)) frac

let grayscale u = ramp [ black; white ] u

let terrain u =
  ramp
    [
      v 8 48 107;    (* deep water *)
      v 66 146 198;  (* shallow water *)
      v 65 171 93;   (* lowland *)
      v 161 130 73;  (* upland *)
      v 120 92 60;   (* mountain *)
      white;         (* peak *)
    ]
    u

let heat u = ramp [ black; v 180 30 20; v 230 180 40; white ] u

let palette =
  [|
    v 31 119 180;
    v 255 127 14;
    v 44 160 44;
    v 214 39 40;
    v 148 103 189;
    v 140 86 75;
    v 227 119 194;
    v 127 127 127;
    v 188 189 34;
    v 23 190 207;
    v 174 199 232;
    v 255 187 120;
  |]

let categorical i = palette.(abs i mod Array.length palette)
let equal a b = a.r = b.r && a.g = b.g && a.b = b.b
let pp ppf c = Format.fprintf ppf "#%02x%02x%02x" c.r c.g c.b
