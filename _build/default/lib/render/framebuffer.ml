type t = { width : int; height : int; pixels : Color.t array }

let create ?(background = Color.black) ~width ~height () =
  if width <= 0 || height <= 0 then
    invalid_arg "Framebuffer.create: non-positive dimensions";
  { width; height; pixels = Array.make (width * height) background }

let width fb = fb.width
let height fb = fb.height
let in_bounds fb x y = x >= 0 && x < fb.width && y >= 0 && y < fb.height

let set fb x y c = if in_bounds fb x y then fb.pixels.((y * fb.width) + x) <- c

let get fb x y =
  if in_bounds fb x y then fb.pixels.((y * fb.width) + x)
  else invalid_arg "Framebuffer.get: out of bounds"

let fill fb c = Array.fill fb.pixels 0 (Array.length fb.pixels) c

let fill_rect fb ~x ~y ~w ~h c =
  for j = y to y + h - 1 do
    for i = x to x + w - 1 do
      set fb i j c
    done
  done

let draw_line fb (x0, y0) (x1, y1) c =
  List.iter (fun (x, y) -> set fb x y c) (Gdp_space.Geometry.grid_line (x0, y0) (x1, y1))

let draw_circle fb ~cx ~cy ~r c =
  if r >= 0 then begin
    let x = ref r and y = ref 0 and err = ref (1 - r) in
    while !x >= !y do
      List.iter
        (fun (dx, dy) -> set fb (cx + dx) (cy + dy) c)
        [
          (!x, !y); (!y, !x); (- !x, !y); (- !y, !x);
          (!x, - !y); (!y, - !x); (- !x, - !y); (- !y, - !x);
        ];
      incr y;
      if !err < 0 then err := !err + (2 * !y) + 1
      else begin
        decr x;
        err := !err + (2 * (!y - !x)) + 1
      end
    done
  end

let blend fb x y c ~alpha =
  if in_bounds fb x y then begin
    let base = fb.pixels.((y * fb.width) + x) in
    set fb x y (Color.lerp base c alpha)
  end

let to_ppm fb =
  let buf = Buffer.create ((fb.width * fb.height * 3) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" fb.width fb.height);
  Array.iter
    (fun (c : Color.t) ->
      Buffer.add_char buf (Char.chr c.Color.r);
      Buffer.add_char buf (Char.chr c.Color.g);
      Buffer.add_char buf (Char.chr c.Color.b))
    fb.pixels;
  Buffer.contents buf

let write_ppm fb path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_ppm fb))

let luminance (c : Color.t) =
  ((0.2126 *. float_of_int c.Color.r)
  +. (0.7152 *. float_of_int c.Color.g)
  +. (0.0722 *. float_of_int c.Color.b))
  /. 255.0

let to_ascii ?(chars = " .:-=+*#%@") fb =
  let n = String.length chars in
  let buf = Buffer.create ((fb.width + 1) * fb.height) in
  for y = 0 to fb.height - 1 do
    for x = 0 to fb.width - 1 do
      let l = luminance fb.pixels.((y * fb.width) + x) in
      let i = min (n - 1) (int_of_float (l *. float_of_int n)) in
      Buffer.add_char buf chars.[i]
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let histogram fb =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (c : Color.t) ->
      let key = (c.Color.r, c.Color.g, c.Color.b) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    fb.pixels;
  Hashtbl.fold (fun (r, g, b) n acc -> (Color.v r g b, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
