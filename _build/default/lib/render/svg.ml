let color_hex (c : Color.t) =
  Printf.sprintf "#%02x%02x%02x" c.Color.r c.Color.g c.Color.b

let of_framebuffer ?(scale = 4) ?(legend = []) fb =
  if scale <= 0 then invalid_arg "Svg.of_framebuffer: scale must be positive";
  let w = Framebuffer.width fb and h = Framebuffer.height fb in
  let legend_height = if legend = [] then 0 else (List.length legend * 18) + 10 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        shape-rendering=\"crispEdges\">\n"
       (w * scale)
       ((h * scale) + legend_height));
  (* row-wise run-length coalescing *)
  for y = 0 to h - 1 do
    let x = ref 0 in
    while !x < w do
      let c = Framebuffer.get fb !x y in
      let run_start = !x in
      while !x < w && Color.equal (Framebuffer.get fb !x y) c do
        incr x
      done;
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n"
           (run_start * scale) (y * scale)
           ((!x - run_start) * scale)
           scale (color_hex c))
    done
  done;
  List.iteri
    (fun i (label, c) ->
      let y = (h * scale) + 14 + (i * 18) in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"4\" y=\"%d\" width=\"12\" height=\"12\" fill=\"%s\"/>\n"
           (y - 10) (color_hex c));
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"22\" y=\"%d\" font-family=\"monospace\" font-size=\"12\">%s</text>\n"
           y
           (String.concat ""
              (List.map
                 (fun ch ->
                   match ch with
                   | '<' -> "&lt;"
                   | '>' -> "&gt;"
                   | '&' -> "&amp;"
                   | c -> String.make 1 c)
                 (List.init (String.length label) (String.get label))))))
    legend;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ?scale ?legend fb path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_framebuffer ?scale ?legend fb))
