type t = Cartesian | Polar | Geographic | Utm of { zone : int }

let earth_radius_m = 6_371_000.0
let deg_to_rad d = d *. Float.pi /. 180.0

let polar_to_cartesian (p : Point.t) =
  (* p = (r, theta, z) *)
  Point.make ~z:p.Point.z (p.Point.x *. cos p.Point.y) (p.Point.x *. sin p.Point.y)

let geographic_to_cartesian (p : Point.t) =
  (* locally flat: meters east/north of (0, 0), altitude preserved *)
  let lon = deg_to_rad p.Point.x and lat = deg_to_rad p.Point.y in
  Point.make ~z:p.Point.z
    (earth_radius_m *. lon *. cos lat)
    (earth_radius_m *. lat)

let to_cartesian cs p =
  match cs with
  | Cartesian | Utm _ -> p
  | Polar -> polar_to_cartesian p
  | Geographic -> geographic_to_cartesian p

let haversine (a : Point.t) (b : Point.t) =
  let lon1 = deg_to_rad a.Point.x
  and lat1 = deg_to_rad a.Point.y
  and lon2 = deg_to_rad b.Point.x
  and lat2 = deg_to_rad b.Point.y in
  let dlat = lat2 -. lat1 and dlon = lon2 -. lon1 in
  let s =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos lat1 *. cos lat2 *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_m *. atan2 (sqrt s) (sqrt (1.0 -. s))

let distance cs a b =
  match cs with
  | Cartesian | Utm _ -> Point.euclidean a b
  | Polar -> Point.euclidean (polar_to_cartesian a) (polar_to_cartesian b)
  | Geographic ->
      let ground = haversine a b in
      let dalt = a.Point.z -. b.Point.z in
      sqrt ((ground *. ground) +. (dalt *. dalt))

let normalize_angle a =
  let two_pi = 2.0 *. Float.pi in
  let a = Float.rem a two_pi in
  if a < 0.0 then a +. two_pi else a

let planar_direction (a : Point.t) (b : Point.t) =
  normalize_angle (atan2 (b.Point.y -. a.Point.y) (b.Point.x -. a.Point.x))

let direction cs a b =
  match cs with
  | Cartesian | Utm _ -> planar_direction a b
  | Polar -> planar_direction (polar_to_cartesian a) (polar_to_cartesian b)
  | Geographic ->
      let lon1 = deg_to_rad a.Point.x
      and lat1 = deg_to_rad a.Point.y
      and lon2 = deg_to_rad b.Point.x
      and lat2 = deg_to_rad b.Point.y in
      let dlon = lon2 -. lon1 in
      let y = sin dlon *. cos lat2 in
      let x = (cos lat1 *. sin lat2) -. (sin lat1 *. cos lat2 *. cos dlon) in
      normalize_angle (atan2 y x)

let pp ppf = function
  | Cartesian -> Format.pp_print_string ppf "cartesian"
  | Polar -> Format.pp_print_string ppf "polar"
  | Geographic -> Format.pp_print_string ppf "geographic"
  | Utm { zone } -> Format.fprintf ppf "utm(zone %d)" zone

let equal c1 c2 =
  match (c1, c2) with
  | Cartesian, Cartesian | Polar, Polar | Geographic, Geographic -> true
  | Utm { zone = z1 }, Utm { zone = z2 } -> z1 = z2
  | (Cartesian | Polar | Geographic | Utm _), _ -> false
