type t = { name : string; origin : Point.t; dx : float; dy : float }

let make ?(name = "") ?(origin = Point.origin) ~dx ~dy () =
  if not (dx > 0.0 && dy > 0.0) then
    invalid_arg "Resolution.make: cell steps must be positive"
  else { name; origin; dx; dy }

let uniform ?name side = make ?name ~dx:side ~dy:side ()

let cell_index r (p : Point.t) =
  ( int_of_float (Float.floor ((p.Point.x -. r.origin.Point.x) /. r.dx)),
    int_of_float (Float.floor ((p.Point.y -. r.origin.Point.y) /. r.dy)) )

let cell_origin r (i, j) =
  Point.make
    (r.origin.Point.x +. (float_of_int i *. r.dx))
    (r.origin.Point.y +. (float_of_int j *. r.dy))

let apply r p =
  let i, j = cell_index r p in
  let o = cell_origin r (i, j) in
  Point.make ~z:p.Point.z (o.Point.x +. (r.dx /. 2.0)) (o.Point.y +. (r.dy /. 2.0))

let same_cell r p1 p2 = cell_index r p1 = cell_index r p2

let cell_region r p =
  let i, j = cell_index r p in
  let o = cell_origin r (i, j) in
  Region.rect ~min_x:o.Point.x ~min_y:o.Point.y ~max_x:(o.Point.x +. r.dx)
    ~max_y:(o.Point.y +. r.dy)

let cell_area r = r.dx *. r.dy

let almost_integer f = Float.abs (f -. Float.round f) < 1e-9

let refines ~fine ~coarse =
  let ok step_f step_c off =
    let ratio = step_c /. step_f in
    ratio >= 1.0 -. 1e-9 && almost_integer ratio && almost_integer (off /. step_f)
  in
  ok fine.dx coarse.dx (coarse.origin.Point.x -. fine.origin.Point.x)
  && ok fine.dy coarse.dy (coarse.origin.Point.y -. fine.origin.Point.y)

let representatives_gen ~keep r region =
  match Region.bounding_box region with
  | None -> invalid_arg "Resolution.representatives: region has no bounding box"
  | Some (min_x, min_y, max_x, max_y) ->
      let i0, j0 = cell_index r (Point.make min_x min_y) in
      let i1, j1 = cell_index r (Point.make max_x max_y) in
      let acc = ref [] in
      (* row-major, reversed construction for an increasing final order *)
      for j = j1 downto j0 do
        for i = i1 downto i0 do
          let o = cell_origin r (i, j) in
          let center =
            Point.make (o.Point.x +. (r.dx /. 2.0)) (o.Point.y +. (r.dy /. 2.0))
          in
          if keep center then acc := center :: !acc
        done
      done;
      !acc

let representatives r region =
  representatives_gen ~keep:(fun c -> Region.mem c region) r region

let representatives_touching r region =
  representatives_gen ~keep:(fun _ -> true) r region

let subcell_representatives ~fine ~coarse p =
  if not (refines ~fine ~coarse) then
    invalid_arg "Resolution.subcell_representatives: not a refinement";
  let region = cell_region coarse p in
  (* fine cells are wholly inside the coarse cell, so keeping centres
     inside the (closed) rectangle is exact *)
  representatives fine region

let equal r1 r2 =
  String.equal r1.name r2.name
  && Point.equal r1.origin r2.origin
  && r1.dx = r2.dx && r1.dy = r2.dy

let pp ppf r =
  Format.fprintf ppf "%s(origin=%a, dx=%g, dy=%g)"
    (if String.equal r.name "" then "R" else r.name)
    Point.pp r.origin r.dx r.dy
