(** Points of the absolute space (§V-A): coordinate triples over the
    reals. Planar data uses [z = 0]; all operations are exact on the
    stored coordinates (interpretation — Cartesian, polar, geographic — is
    supplied by {!Coord}). *)

type t = { x : float; y : float; z : float }

val make : ?z:float -> float -> float -> t
val origin : t
val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic by x, then y, then z — a total order used for
    deterministic iteration. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val euclidean : t -> t -> float
val manhattan : t -> t -> float
val chebyshev : t -> t -> float
val midpoint : t -> t -> t
val lerp : t -> t -> float -> t
(** [lerp a b u] with [u] in [0, 1]. *)

val pp : Format.formatter -> t -> unit
