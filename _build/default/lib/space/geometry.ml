let grid_line (x0, y0) (x1, y1) =
  let dx = abs (x1 - x0) and dy = -abs (y1 - y0) in
  let sx = if x0 < x1 then 1 else -1 and sy = if y0 < y1 then 1 else -1 in
  let rec go x y err acc =
    let acc = (x, y) :: acc in
    if x = x1 && y = y1 then List.rev acc
    else begin
      let e2 = 2 * err in
      let x, err = if e2 >= dy then (x + sx, err + dy) else (x, err) in
      let y, err = if e2 <= dx then (y + sy, err + dx) else (y, err) in
      go x y err acc
    end
  in
  go x0 y0 (dx + dy) []

let cross (o : Point.t) (a : Point.t) (b : Point.t) =
  ((a.Point.x -. o.Point.x) *. (b.Point.y -. o.Point.y))
  -. ((a.Point.y -. o.Point.y) *. (b.Point.x -. o.Point.x))

let on_segment (p : Point.t) (q : Point.t) (r : Point.t) =
  (* r collinear with pq: is r within the bounding box of pq? *)
  Float.min p.Point.x q.Point.x <= r.Point.x
  && r.Point.x <= Float.max p.Point.x q.Point.x
  && Float.min p.Point.y q.Point.y <= r.Point.y
  && r.Point.y <= Float.max p.Point.y q.Point.y

let segments_intersect (p1, p2) (p3, p4) =
  let d1 = cross p3 p4 p1
  and d2 = cross p3 p4 p2
  and d3 = cross p1 p2 p3
  and d4 = cross p1 p2 p4 in
  if
    ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
    && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
  then true
  else
    (d1 = 0.0 && on_segment p3 p4 p1)
    || (d2 = 0.0 && on_segment p3 p4 p2)
    || (d3 = 0.0 && on_segment p1 p2 p3)
    || (d4 = 0.0 && on_segment p1 p2 p4)

let segment_point_distance (a, b) p =
  let ab = Point.sub b a in
  let len2 = Point.dot ab ab in
  if len2 = 0.0 then Point.euclidean a p
  else begin
    let t = Float.max 0.0 (Float.min 1.0 (Point.dot (Point.sub p a) ab /. len2)) in
    Point.euclidean p (Point.add a (Point.scale t ab))
  end

let convex_hull points =
  let distinct =
    List.sort_uniq Point.compare points
  in
  match distinct with
  | [] | [ _ ] | [ _; _ ] -> distinct
  | _ ->
      let half pts =
        List.fold_left
          (fun hull p ->
            let rec pop = function
              | a :: b :: rest when cross b a p <= 0.0 -> pop (b :: rest)
              | hull -> hull
            in
            p :: pop hull)
          [] pts
      in
      let lower = half distinct in
      let upper = half (List.rev distinct) in
      (* each half includes both endpoints; drop the duplicated ends *)
      List.rev (List.tl lower) @ List.rev (List.tl upper)

let polyline_length = function
  | [] | [ _ ] -> 0.0
  | pts ->
      let rec go acc = function
        | a :: (b :: _ as rest) -> go (acc +. Point.euclidean a b) rest
        | _ -> acc
      in
      go 0.0 pts

let rec douglas_peucker ~epsilon points =
  match points with
  | [] | [ _ ] | [ _; _ ] -> points
  | first :: _ ->
      let last = List.nth points (List.length points - 1) in
      let arr = Array.of_list points in
      let best_i = ref 0 and best_d = ref 0.0 in
      for i = 1 to Array.length arr - 2 do
        let d = segment_point_distance (first, last) arr.(i) in
        if d > !best_d then begin
          best_d := d;
          best_i := i
        end
      done;
      if !best_d <= epsilon then [ first; last ]
      else begin
        let left = Array.to_list (Array.sub arr 0 (!best_i + 1)) in
        let right = Array.to_list (Array.sub arr !best_i (Array.length arr - !best_i)) in
        let l = douglas_peucker ~epsilon left in
        let r = douglas_peucker ~epsilon right in
        l @ List.tl r
      end
