lib/space/resolution.mli: Format Point Region
