lib/space/region.ml: Array Float Format List Point
