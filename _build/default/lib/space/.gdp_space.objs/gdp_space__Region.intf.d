lib/space/region.mli: Format Point
