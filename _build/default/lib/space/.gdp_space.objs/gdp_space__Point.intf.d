lib/space/point.mli: Format
