lib/space/coord.mli: Format Point
