lib/space/point.ml: Float Format
