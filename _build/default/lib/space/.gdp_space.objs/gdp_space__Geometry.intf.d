lib/space/geometry.mli: Point
