lib/space/geometry.ml: Array Float List Point
