lib/space/resolution.ml: Float Format Point Region String
