lib/space/coord.ml: Float Format Point
