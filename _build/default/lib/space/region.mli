(** Regions of the plane: the finite areas over which spatial operators
    quantify, and the shapes used by workload generators and rendering.
    Regions are planar (the z coordinate is ignored). *)

type t =
  | Rect of { min_x : float; min_y : float; max_x : float; max_y : float }
  | Circle of { center : Point.t; radius : float }
  | Polygon of Point.t list  (** simple polygon, vertices in order *)
  | Union of t * t
  | Intersection of t * t
  | Difference of t * t

val rect : min_x:float -> min_y:float -> max_x:float -> max_y:float -> t
(** Raises [Invalid_argument] when max < min on either axis. *)

val square : center:Point.t -> side:float -> t
val circle : center:Point.t -> radius:float -> t
val polygon : Point.t list -> t
(** Raises [Invalid_argument] on fewer than three vertices. *)

val mem : Point.t -> t -> bool
(** Point-in-region; polygon membership by the even–odd (ray crossing)
    rule, boundary points counted inside for rectangles and circles. *)

val bounding_box : t -> (float * float * float * float) option
(** [min_x, min_y, max_x, max_y]; [None] for a degenerate empty
    difference — conservative (may over-approximate for differences). *)

val area : t -> float option
(** Exact for rectangles, circles and simple polygons (shoelace);
    [None] for set combinations. *)

val centroid : t -> Point.t option
(** Exact for rectangles, circles, simple polygons. *)

val pp : Format.formatter -> t -> unit
