(** Coordinate systems for the absolute space (§V-A).

    "The definition of absolute space also includes a distance function
    and a direction function specific to the coordinate system being used,
    i.e., polar, Cartesian, universal transverse mercator, etc." Changing
    the coordinate system affects only this module — not the rules of
    reasoning about spatial properties, exactly as the paper requires. *)

type t =
  | Cartesian  (** x/y/z in uniform linear units *)
  | Polar
      (** points are (r, θ, z) with θ in radians; distance and direction
          are computed on the Cartesian image *)
  | Geographic
      (** points are (longitude°, latitude°, altitude m); great-circle
          distance (haversine) on a spherical earth, direction = initial
          bearing *)
  | Utm of { zone : int }
      (** simplified universal transverse mercator: eastings/northings in
          meters within one zone; planar like Cartesian but carries its
          zone so cross-zone distances are rejected *)

val to_cartesian : t -> Point.t -> Point.t
(** Image of a point in a common Cartesian frame (geographic uses a
    locally flat earth-radius scaling around the point's latitude — used
    only for rendering, not for distances). *)

val distance : t -> Point.t -> Point.t -> float
(** Distance between two points expressed in the same system. A [Utm]
    value denotes a single zone, so both points are in that zone by
    construction; mixing systems is the caller's error and must be
    resolved by converting through {!to_cartesian} first. *)

val direction : t -> Point.t -> Point.t -> float
(** Direction from the first point to the second, in radians in
    [0, 2π): Cartesian/Utm/Polar measure counterclockwise from the +x
    axis; Geographic returns the initial great-circle bearing measured
    clockwise from north. *)

val earth_radius_m : float
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
