type t =
  | Rect of { min_x : float; min_y : float; max_x : float; max_y : float }
  | Circle of { center : Point.t; radius : float }
  | Polygon of Point.t list
  | Union of t * t
  | Intersection of t * t
  | Difference of t * t

let rect ~min_x ~min_y ~max_x ~max_y =
  if max_x < min_x || max_y < min_y then
    invalid_arg "Region.rect: max below min"
  else Rect { min_x; min_y; max_x; max_y }

let square ~center ~side =
  let h = side /. 2.0 in
  rect
    ~min_x:(center.Point.x -. h)
    ~min_y:(center.Point.y -. h)
    ~max_x:(center.Point.x +. h)
    ~max_y:(center.Point.y +. h)

let circle ~center ~radius =
  if radius < 0.0 then invalid_arg "Region.circle: negative radius"
  else Circle { center; radius }

let polygon vertices =
  if List.length vertices < 3 then
    invalid_arg "Region.polygon: at least three vertices required"
  else Polygon vertices

(* Even-odd rule; points exactly on an edge may land either way, which is
   acceptable for the raster-style sampling the formalism performs. *)
let point_in_polygon (p : Point.t) vertices =
  let arr = Array.of_list vertices in
  let n = Array.length arr in
  let inside = ref false in
  for i = 0 to n - 1 do
    let a = arr.(i) and b = arr.((i + 1) mod n) in
    let ay = a.Point.y and by = b.Point.y in
    if ay > p.Point.y <> (by > p.Point.y) then begin
      let t = (p.Point.y -. ay) /. (by -. ay) in
      let cross_x = a.Point.x +. (t *. (b.Point.x -. a.Point.x)) in
      if p.Point.x < cross_x then inside := not !inside
    end
  done;
  !inside

let rec mem p = function
  | Rect { min_x; min_y; max_x; max_y } ->
      p.Point.x >= min_x && p.Point.x <= max_x && p.Point.y >= min_y
      && p.Point.y <= max_y
  | Circle { center; radius } ->
      let dx = p.Point.x -. center.Point.x and dy = p.Point.y -. center.Point.y in
      (dx *. dx) +. (dy *. dy) <= radius *. radius
  | Polygon vs -> point_in_polygon p vs
  | Union (a, b) -> mem p a || mem p b
  | Intersection (a, b) -> mem p a && mem p b
  | Difference (a, b) -> mem p a && not (mem p b)

let rec bounding_box = function
  | Rect { min_x; min_y; max_x; max_y } -> Some (min_x, min_y, max_x, max_y)
  | Circle { center; radius } ->
      Some
        ( center.Point.x -. radius,
          center.Point.y -. radius,
          center.Point.x +. radius,
          center.Point.y +. radius )
  | Polygon vs ->
      let xs = List.map (fun (p : Point.t) -> p.Point.x) vs
      and ys = List.map (fun (p : Point.t) -> p.Point.y) vs in
      Some
        ( List.fold_left Float.min Float.infinity xs,
          List.fold_left Float.min Float.infinity ys,
          List.fold_left Float.max Float.neg_infinity xs,
          List.fold_left Float.max Float.neg_infinity ys )
  | Union (a, b) -> (
      match (bounding_box a, bounding_box b) with
      | Some (x0, y0, x1, y1), Some (x0', y0', x1', y1') ->
          Some (Float.min x0 x0', Float.min y0 y0', Float.max x1 x1', Float.max y1 y1')
      | Some bb, None | None, Some bb -> Some bb
      | None, None -> None)
  | Intersection (a, b) -> (
      match (bounding_box a, bounding_box b) with
      | Some (x0, y0, x1, y1), Some (x0', y0', x1', y1') ->
          let bx0 = Float.max x0 x0'
          and by0 = Float.max y0 y0'
          and bx1 = Float.min x1 x1'
          and by1 = Float.min y1 y1' in
          if bx0 <= bx1 && by0 <= by1 then Some (bx0, by0, bx1, by1) else None
      | _ -> None)
  | Difference (a, _) -> bounding_box a

let shoelace vs =
  let arr = Array.of_list vs in
  let n = Array.length arr in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let a = arr.(i) and b = arr.((i + 1) mod n) in
    acc := !acc +. ((a.Point.x *. b.Point.y) -. (b.Point.x *. a.Point.y))
  done;
  !acc /. 2.0

let area = function
  | Rect { min_x; min_y; max_x; max_y } -> Some ((max_x -. min_x) *. (max_y -. min_y))
  | Circle { radius; _ } -> Some (Float.pi *. radius *. radius)
  | Polygon vs -> Some (Float.abs (shoelace vs))
  | Union _ | Intersection _ | Difference _ -> None

let centroid = function
  | Rect { min_x; min_y; max_x; max_y } ->
      Some (Point.make ((min_x +. max_x) /. 2.0) ((min_y +. max_y) /. 2.0))
  | Circle { center; _ } -> Some center
  | Polygon vs ->
      let a = shoelace vs in
      if a = 0.0 then None
      else begin
        let arr = Array.of_list vs in
        let n = Array.length arr in
        let cx = ref 0.0 and cy = ref 0.0 in
        for i = 0 to n - 1 do
          let p = arr.(i) and q = arr.((i + 1) mod n) in
          let w = (p.Point.x *. q.Point.y) -. (q.Point.x *. p.Point.y) in
          cx := !cx +. ((p.Point.x +. q.Point.x) *. w);
          cy := !cy +. ((p.Point.y +. q.Point.y) *. w)
        done;
        Some (Point.make (!cx /. (6.0 *. a)) (!cy /. (6.0 *. a)))
      end
  | Union _ | Intersection _ | Difference _ -> None

let rec pp ppf = function
  | Rect { min_x; min_y; max_x; max_y } ->
      Format.fprintf ppf "rect[%g,%g - %g,%g]" min_x min_y max_x max_y
  | Circle { center; radius } ->
      Format.fprintf ppf "circle[%a r=%g]" Point.pp center radius
  | Polygon vs -> Format.fprintf ppf "polygon[%d vertices]" (List.length vs)
  | Union (a, b) -> Format.fprintf ppf "(%a ∪ %a)" pp a pp b
  | Intersection (a, b) -> Format.fprintf ppf "(%a ∩ %a)" pp a pp b
  | Difference (a, b) -> Format.fprintf ppf "(%a \\ %a)" pp a pp b
