(** Planar geometric algorithms shared by the workload generators, the
    abstraction rules and the renderer. *)

val grid_line : (int * int) -> (int * int) -> (int * int) list
(** Bresenham traversal of grid cells from one cell to another, endpoints
    included — how a zero-width feature (a road, §V-C's area-sampled
    example) deposits samples in a finite-resolution space. *)

val segments_intersect : Point.t * Point.t -> Point.t * Point.t -> bool
(** Proper or touching intersection of two closed segments (z ignored). *)

val segment_point_distance : Point.t * Point.t -> Point.t -> float
(** Euclidean distance from a point to a closed segment (planar). *)

val convex_hull : Point.t list -> Point.t list
(** Andrew's monotone chain; returns hull vertices in counterclockwise
    order, without the repeated first point. Fewer than three distinct
    input points return the distinct points themselves. *)

val polyline_length : Point.t list -> float

val douglas_peucker : epsilon:float -> Point.t list -> Point.t list
(** Polyline simplification — the classic cartographic generalisation
    counterpart to the paper's abstraction rules (§V-D): reduce detail
    when moving to a lower resolution. *)
