(** Planar resolution functions: logical space and finite resolution
    (§V-B).

    A resolution function R partitions the absolute space into rectangular
    patches and maps every point of a patch to the patch's representative
    point, "reducing patches from the absolute space into single points in
    the logical space". Grid cells are half-open
    [ox + i·dx, ox + (i+1)·dx) × [oy + j·dy, oy + (j+1)·dy) and the
    representative point is the cell centre. *)

type t = private {
  name : string;
  origin : Point.t;
  dx : float;
  dy : float;
}

val make : ?name:string -> ?origin:Point.t -> dx:float -> dy:float -> unit -> t
(** Raises [Invalid_argument] unless both steps are positive. *)

val uniform : ?name:string -> float -> t
(** Square cells anchored at the origin. *)

val apply : t -> Point.t -> Point.t
(** R(p): the representative point (cell centre; z is preserved).
    Idempotent. *)

val same_cell : t -> Point.t -> Point.t -> bool
(** R(p1) = R(p2). *)

val cell_index : t -> Point.t -> int * int
val cell_region : t -> Point.t -> Region.t
(** The rectangular patch whose points all map to [apply r p]. *)

val cell_area : t -> float

val refines : fine:t -> coarse:t -> bool
(** The paper's refinement relation [R2 >> R1] ([fine = R2],
    [coarse = R1]): whenever two points share a fine cell they also share
    a coarse cell. For grids: both coarse steps are positive integer
    multiples of the fine steps and the origins are aligned modulo the
    fine steps. Reflexive and transitive (property-tested). *)

val representatives : t -> Region.t -> Point.t list
(** Representative points of all cells whose centre lies in the region, in
    row-major order (deterministic). Raises [Invalid_argument] when the
    region has no bounding box. *)

val representatives_touching : t -> Region.t -> Point.t list
(** Like {!representatives} but keeps every cell whose rectangle
    intersects the region's bounding box — used when sampling must not
    miss boundary cells. *)

val subcell_representatives : fine:t -> coarse:t -> Point.t -> Point.t list
(** Representative points of the fine cells that make up the coarse cell
    containing the given point (the "high resolution subareas of a low
    resolution area"). Raises [Invalid_argument] unless
    [refines ~fine ~coarse]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
