type t = { x : float; y : float; z : float }

let make ?(z = 0.0) x y = { x; y; z }
let origin = { x = 0.0; y = 0.0; z = 0.0 }
let equal a b = a.x = b.x && a.y = b.y && a.z = b.z

let compare a b =
  let c = Float.compare a.x b.x in
  if c <> 0 then c
  else
    let c = Float.compare a.y b.y in
    if c <> 0 then c else Float.compare a.z b.z

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }
let scale k a = { x = k *. a.x; y = k *. a.y; z = k *. a.z }
let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)
let norm a = sqrt (dot a a)
let euclidean a b = norm (sub a b)

let manhattan a b =
  Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y) +. Float.abs (a.z -. b.z)

let chebyshev a b =
  Float.max
    (Float.abs (a.x -. b.x))
    (Float.max (Float.abs (a.y -. b.y)) (Float.abs (a.z -. b.z)))

let midpoint a b = scale 0.5 (add a b)
let lerp a b u = add a (scale u (sub b a))

let pp ppf { x; y; z } =
  if z = 0.0 then Format.fprintf ppf "(%g, %g)" x y
  else Format.fprintf ppf "(%g, %g, %g)" x y z
