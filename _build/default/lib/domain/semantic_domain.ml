open Gdp_logic

type operation = Term.t list -> Term.t option

type shape =
  | Enum of string list
  | Int_range of int * int
  | Real_range of float * float
  | Number_shape
  | Text_shape
  | Any_shape

type t = {
  name : string;
  contains : Term.t -> bool;
  enumerate : Term.t list option;
  operations : (string * operation) list;
  shape : shape option;
}

let make ?enumerate ?(operations = []) ~name ~contains () =
  { name; contains; enumerate; operations; shape = None }

let enumeration ~name values =
  let terms = List.map Term.atom values in
  {
    name;
    contains = (fun t -> List.exists (Term.equal t) terms);
    enumerate = Some terms;
    operations = [];
    shape = Some (Enum values);
  }

let int_range ~name ~lo ~hi =
  {
    name;
    contains = (function Term.Int n -> n >= lo && n <= hi | _ -> false);
    enumerate = Some (List.init (hi - lo + 1) (fun i -> Term.Int (lo + i)));
    operations = [];
    shape = Some (Int_range (lo, hi));
  }

let real_range ~name ~lo ~hi =
  let in_range f = f >= lo && f <= hi in
  {
    name;
    contains =
      (function
      | Term.Int n -> in_range (float_of_int n)
      | Term.Float f -> in_range f
      | _ -> false);
    enumerate = None;
    operations = [];
    shape = Some (Real_range (lo, hi));
  }

let number ~name =
  {
    name;
    contains = (function Term.Int _ | Term.Float _ -> true | _ -> false);
    enumerate = None;
    operations = [];
    shape = Some Number_shape;
  }

let text ~name =
  {
    name;
    contains = (function Term.Str _ -> true | _ -> false);
    enumerate = None;
    operations = [];
    shape = Some Text_shape;
  }

let any ~name =
  {
    name;
    contains = Term.is_ground;
    enumerate = None;
    operations = [];
    shape = Some Any_shape;
  }

let contains d t = d.contains t
let find_operation d name = List.assoc_opt name d.operations

let apply_operation d name args =
  match find_operation d name with None -> None | Some op -> op args

let with_operation d name op = { d with operations = (name, op) :: d.operations }

let pp ppf d =
  match d.enumerate with
  | Some vs ->
      Format.fprintf ppf "%s = {@[%a@]}" d.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Term.pp)
        vs
  | None -> Format.fprintf ppf "%s = <intensional>" d.name

module Registry = struct
  type domain = t
  type nonrec t = (string, domain) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add reg d =
    if Hashtbl.mem reg d.name then
      invalid_arg (Printf.sprintf "Domain registry: duplicate domain %s" d.name)
    else Hashtbl.add reg d.name d

  let find reg name = Hashtbl.find_opt reg name
  let names reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort String.compare

  let builtin () =
    let reg = create () in
    add reg (number ~name:"number");
    add reg (text ~name:"text");
    add reg (enumeration ~name:"boolean" [ "true"; "false" ]);
    add reg (any ~name:"any");
    reg
end
