lib/domain/semantic_domain.ml: Format Gdp_logic Hashtbl List Printf String Term
