lib/domain/semantic_domain.mli: Format Gdp_logic Term
