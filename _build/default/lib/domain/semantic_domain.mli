(** Semantic domains (§III-B): "a set of values and operations over them".

    Values qualify properties of objects but are never themselves objects:
    the value 50 of the domain [temperature] may appear in
    [average_temperature(50)(saint_louis)] but denotes no geographic
    entity. Domains carry a characteristic function (used to enforce
    many-sorted logic, §III-C) and named operations that return Boolean or
    term results; per the paper, an operation returning "false" is
    interpreted as "not provable" when used as a test. *)

open Gdp_logic

type operation = Term.t list -> Term.t option
(** Total OCaml implementation of a domain operation: [None] encodes
    failure/not-provable; a Boolean operation returns [Some (Atom "true")]
    or [None]. *)

(** Syntactic shape of a domain, kept for serialisation (the
    requirements-language printer); [None] for domains built from custom
    characteristic functions. *)
type shape =
  | Enum of string list
  | Int_range of int * int
  | Real_range of float * float
  | Number_shape
  | Text_shape
  | Any_shape

type t = private {
  name : string;
  contains : Term.t -> bool;  (** characteristic function *)
  enumerate : Term.t list option;  (** all values, for finite domains *)
  operations : (string * operation) list;
  shape : shape option;
}

val make :
  ?enumerate:Term.t list ->
  ?operations:(string * operation) list ->
  name:string ->
  contains:(Term.t -> bool) ->
  unit ->
  t

val enumeration : name:string -> string list -> t
(** Finite domain of atoms, e.g. vegetation = {pine, oak, grass}. *)

val int_range : name:string -> lo:int -> hi:int -> t
(** Integers in [lo, hi], enumerable. *)

val real_range : name:string -> lo:float -> hi:float -> t
(** Numbers (ints or floats) within [lo, hi]; not enumerable. *)

val number : name:string -> t
(** Any int or float. *)

val text : name:string -> t
(** Any string. *)

val any : name:string -> t
(** Every ground term — the unconstrained domain. *)

val contains : t -> Term.t -> bool
val find_operation : t -> string -> operation option

val apply_operation : t -> string -> Term.t list -> Term.t option
(** [None] when the operation is unknown or fails. *)

val with_operation : t -> string -> operation -> t
val pp : Format.formatter -> t -> unit

(** {1 Registry} *)

module Registry : sig
  type domain = t
  type t

  val create : unit -> t
  val add : t -> domain -> unit
  (** Raises [Invalid_argument] on duplicate names. *)

  val find : t -> string -> domain option
  val names : t -> string list
  (** Sorted. *)

  val builtin : unit -> t
  (** A registry preloaded with [number], [text], [boolean] (true/false)
      and [any]. *)
end
