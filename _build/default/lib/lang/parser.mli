(** Recursive-descent parser for the GDP requirements language.
    See [grammar.md] at the repository root for the grammar. *)

exception Error of string
(** Message includes line:col and what was expected. *)

val program : string -> Ast.program
val body : string -> Ast.body
(** Parse a rule body alone (used by tests and the CLI's query mode). *)

val fact : string -> Ast.fact_atom
(** Parse a single fact atom (no trailing dot required). *)
