lib/lang/lexer.ml: Buffer Format List Option Printf String
