lib/lang/lexer.mli:
