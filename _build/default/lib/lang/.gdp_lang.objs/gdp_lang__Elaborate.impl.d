lib/lang/elaborate.ml: Ast Filename Float Format Formula Fun Gdp_core Gdp_domain Gdp_fuzzy Gdp_logic Gdp_space Gdp_temporal Gfact Hashtbl Lexer List Meta Names Option Parser Printf Query Spec String
