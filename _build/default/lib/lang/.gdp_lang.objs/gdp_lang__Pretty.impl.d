lib/lang/pretty.ml: Float Format Formula Gdp_core Gdp_domain Gdp_fuzzy Gdp_logic Gdp_space Gdp_temporal Gfact Hashtbl List Meta Names Printf Spec String
