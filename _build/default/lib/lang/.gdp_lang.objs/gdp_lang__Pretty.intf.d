lib/lang/pretty.mli: Format Gdp_core
