lib/lang/elaborate.mli: Ast Gdp_core
