lib/lang/parser.ml: Ast Float Format Lexer List Printf String
