type position = { line : int; col : int }

type expr =
  | E_atom of string
  | E_var of string
  | E_int of int
  | E_float of float
  | E_str of string
  | E_app of string * expr list

type spatial =
  | Sq_none
  | Sq_at of expr list
  | Sq_uniform of string * expr list
  | Sq_sampled of string * expr list
  | Sq_averaged of string * expr list

type bound_expr = B_num of float | B_now of float | B_inf | B_var of string

type interval_expr = {
  lower : bound_expr;
  lower_closed : bool;
  upper : bound_expr;
  upper_closed : bool;
}

type temporal =
  | Tq_none
  | Tq_at of expr
  | Tq_uniform of interval_expr
  | Tq_sampled of interval_expr
  | Tq_averaged of interval_expr
  | Tq_resolution of string * string * float
      (** [&u[years] 1975] — kind ("u"/"s"/"a"), named temporal
          resolution, instant: the §VI-A resolution form, elaborated to
          the containing logical-time cell *)
  | Tq_cyclic of float * interval_expr
      (** [&c[period] interval] — true during the phase interval of every
          period (the cyclic extension §VI-B mentions) *)
  | Tq_var of string

type fact_atom = {
  fa_model : string option;
  fa_pred : string;
  fa_values : expr list;
  fa_objects : expr list;
  fa_space : spatial;
  fa_time : temporal;
  fa_pos : position;
}

type body =
  | B_atom of fact_atom
  | B_acc of fact_atom * expr
  | B_test of expr
  | B_and of body * body
  | B_or of body * body
  | B_forall of body * body
  | B_not of body

type domain_def =
  | D_enum of string list
  | D_int_range of int * int
  | D_real_range of float * float
  | D_number
  | D_text
  | D_any

type statement =
  | S_coordinate of string * int option
  | S_clock of float
  | S_fuzzy of string
  | S_domain of string * domain_def
  | S_objects of string list
  | S_predicate of string * string list * int
  | S_space of { name : string; dx : float; dy : float; ox : float; oy : float }
  | S_timespace of { name : string; step : float; origin : float }
  | S_region of string * region_def
  | S_model of string
  | S_fact of fact_atom
  | S_acc_fact of fact_atom * float
  | S_rule of {
      r_accuracy : expr option;
      r_head : fact_atom;
      r_body : body;
      r_pos : position;
    }
  | S_constraint of {
      c_tag : string;
      c_args : expr list;
      c_body : body;
      c_model : string option;
      c_pos : position;
    }
  | S_metamodel of { mm_name : string; mm_loopcheck : bool; mm_clauses : string }
  | S_include of string
      (** [include "file.gdp".] — splice another specification file *)
  | S_use of string list
  | S_view of { v_name : string; v_models : string list; v_metas : string list }

and region_def =
  | R_rect of float * float * float * float
  | R_circle of float * float * float
  | R_poly of (float * float) list

type program = statement list

let pp_position ppf { line; col } = Format.fprintf ppf "%d:%d" line col
