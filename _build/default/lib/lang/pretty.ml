open Gdp_core
module T = Gdp_logic.Term
module Sd = Gdp_domain.Semantic_domain

(* Per-statement variable naming: every distinct variable id gets a unique
   surface name so the reparse reconstructs the same sharing. *)
type names = {
  by_id : (int, string) Hashtbl.t;
  used : (string, unit) Hashtbl.t;
}

let fresh_names () = { by_id = Hashtbl.create 8; used = Hashtbl.create 8 }

let var_name names (v : T.var) =
  match Hashtbl.find_opt names.by_id v.T.id with
  | Some n -> n
  | None ->
      let base =
        let n = v.T.name in
        if
          String.length n > 0
          && (match n.[0] with 'A' .. 'Z' -> true | '_' -> n <> "_" | _ -> false)
        then n
        else "V"
      in
      let candidate =
        if Hashtbl.mem names.used base then Printf.sprintf "%s_%d" base v.T.id
        else base
      in
      Hashtbl.add names.used candidate ();
      Hashtbl.add names.by_id v.T.id candidate;
      candidate

let pp_float ppf f =
  if Float.is_integer f && Float.abs f < 1e15 then Format.fprintf ppf "%.1f" f
  else begin
    (* shortest decimal that parses back exactly *)
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then Format.pp_print_string ppf short
    else Format.fprintf ppf "%.17g" f
  end

let rec pp_expr names ppf (t : T.t) =
  match t with
  | T.Var v -> Format.pp_print_string ppf (var_name names v)
  | T.Atom s -> Format.pp_print_string ppf s
  | T.Int n -> Format.pp_print_int ppf n
  | T.Float f -> pp_float ppf f
  | T.Str s -> Format.fprintf ppf "%S" s
  | T.App (("+" | "-" | "*" | "/") as op, [ a; b ]) ->
      Format.fprintf ppf "(%a %s %a)" (pp_expr names) a op (pp_expr names) b
  | T.App (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_expr names))
        args

let pp_position names ppf (t : T.t) =
  match t with
  | T.App ("pos", ([ _; _ ] | [ _; _; _ ] as coords)) ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_expr names))
        coords
  | other -> pp_expr names ppf other

let pp_bound names ~closed:_ ppf (t : T.t) =
  match t with
  | T.App (("incl" | "excl"), [ T.Atom "now" ]) -> Format.pp_print_string ppf "now"
  | T.App (("incl" | "excl"), [ T.App ("+", [ T.Atom "now"; d ]) ]) ->
      Format.fprintf ppf "now + %a" (pp_expr names) d
  | T.App (("incl" | "excl"), [ T.App ("-", [ T.Atom "now"; d ]) ]) ->
      Format.fprintf ppf "now - %a" (pp_expr names) d
  | T.App (("incl" | "excl"), [ x ]) -> pp_expr names ppf x
  | T.Atom "inf" -> Format.pp_print_string ppf "inf"
  | other -> pp_expr names ppf other

let bound_closed = function
  | T.App ("incl", _) -> true
  | T.App ("excl", _) -> false
  | _ -> true (* inf: bracket choice is immaterial, use the closed form *)

let pp_interval names ppf (t : T.t) =
  match t with
  | T.App ("cell", [ T.Atom r; instant ]) ->
      Format.fprintf ppf "[%s] %a" r (pp_expr names) instant
  | T.App ("iv", [ lo; hi ]) ->
      Format.fprintf ppf "%c%a, %a%c"
        (if bound_closed lo then '[' else '(')
        (pp_bound names ~closed:(bound_closed lo))
        lo
        (pp_bound names ~closed:(bound_closed hi))
        hi
        (if bound_closed hi then ']' else ')')
  | other -> pp_expr names ppf other

let pp_spatial names ppf = function
  | Gfact.S_everywhere -> ()
  | Gfact.S_at p -> Format.fprintf ppf "@%a " (pp_position names) p
  | Gfact.S_uniform (T.Atom r, p) ->
      Format.fprintf ppf "@u[%s]%a " r (pp_position names) p
  | Gfact.S_sampled (T.Atom r, p) ->
      Format.fprintf ppf "@s[%s]%a " r (pp_position names) p
  | Gfact.S_averaged (T.Atom r, p) ->
      Format.fprintf ppf "@a[%s]%a " r (pp_position names) p
  | Gfact.S_uniform _ | Gfact.S_sampled _ | Gfact.S_averaged _ | Gfact.S_var _ ->
      failwith "Pretty: spatial qualifier not expressible in the surface syntax"

let pp_temporal names ppf = function
  | Gfact.T_always -> ()
  | Gfact.T_at (T.Atom "now") -> Format.fprintf ppf "&now "
  | Gfact.T_at t -> Format.fprintf ppf "&%a " (pp_expr names) t
  | Gfact.T_uniform iv -> Format.fprintf ppf "&u%a " (pp_interval names) iv
  | Gfact.T_sampled iv -> Format.fprintf ppf "&s%a " (pp_interval names) iv
  | Gfact.T_averaged iv -> Format.fprintf ppf "&a%a " (pp_interval names) iv
  | Gfact.T_var (T.App ("cyc", [ period; iv ])) ->
      Format.fprintf ppf "&c[%a]%a " (pp_expr names) period (pp_interval names) iv
  | Gfact.T_var _ ->
      failwith "Pretty: temporal qualifier not expressible in the surface syntax"

let pp_fact_in names ppf (f : Gfact.t) =
  pp_spatial names ppf f.Gfact.space;
  pp_temporal names ppf f.Gfact.time;
  (match f.Gfact.model with
  | Some (T.Atom m) when m <> Names.default_model -> Format.fprintf ppf "%s'" m
  | _ -> ());
  (match f.Gfact.pred with
  | T.Atom p -> Format.pp_print_string ppf p
  | _ -> failwith "Pretty: second-order fact pattern not expressible");
  let group args =
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_expr names))
      args
  in
  if f.Gfact.values <> [] then group f.Gfact.values;
  group f.Gfact.objects

let fact ppf f = pp_fact_in (fresh_names ()) ppf f

let comparison_ops = [ ">"; "<"; ">="; "=<"; "=="; "\\=="; "="; "\\="; "=:="; "=\\=" ]

let rec pp_formula_in names ppf = function
  | Formula.Atom f -> pp_fact_in names ppf f
  | Formula.Acc (f, a) ->
      Format.fprintf ppf "%%[%a] %a" (pp_expr names) a (pp_fact_in names) f
  | Formula.Test (T.App (op, [ l; r ])) when List.mem op comparison_ops ->
      Format.fprintf ppf "%a %s %a" (pp_expr names) l op (pp_expr names) r
  | Formula.Test (T.App ("is", [ l; r ])) ->
      Format.fprintf ppf "%a is %a" (pp_expr names) l (pp_expr names) r
  | Formula.Test t -> Format.fprintf ppf "test %a" (pp_expr names) t
  | Formula.And (x, y) ->
      Format.fprintf ppf "%a, %a" (pp_formula_in names) x (pp_formula_in names) y
  | Formula.Or (x, y) ->
      Format.fprintf ppf "(%a ; %a)" (pp_formula_in names) x (pp_formula_in names) y
  | Formula.Forall (g, c) ->
      Format.fprintf ppf "forall(%a => %a)" (pp_formula_in names) g
        (pp_formula_in names) c
  | Formula.Not x -> Format.fprintf ppf "not (%a)" (pp_formula_in names) x

let formula ppf f = pp_formula_in (fresh_names ()) ppf f

let pp_rule_in ?(model_prefix = "") names ppf (r : Spec.rule) =
  let head = r.Spec.rule_head in
  if T.equal head.Gfact.pred (T.atom Names.error_pred) then begin
    match head.Gfact.values with
    | T.Atom tag :: args ->
        Format.fprintf ppf "constraint %s(%a) <- %a." tag
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             (pp_expr names))
          args
          (pp_formula_in names) r.Spec.rule_body
    | _ -> failwith "Pretty: malformed constraint head"
  end
  else begin
    Format.fprintf ppf "rule ";
    (match r.Spec.rule_accuracy with
    | Some acc -> Format.fprintf ppf "%%%a " (pp_expr names) acc
    | None -> ());
    Format.fprintf ppf "%s%a <- %a." model_prefix (pp_fact_in names) head
      (pp_formula_in names) r.Spec.rule_body
  end

let rule ppf r = pp_rule_in (fresh_names ()) ppf r

let pp_domain ppf (d : Sd.t) =
  match d.Sd.shape with
  | Some (Sd.Enum values) ->
      Format.fprintf ppf "domain %s = { %s }." d.Sd.name (String.concat ", " values)
  | Some (Sd.Int_range (lo, hi)) ->
      Format.fprintf ppf "domain %s = int(%d, %d)." d.Sd.name lo hi
  | Some (Sd.Real_range (lo, hi)) ->
      Format.fprintf ppf "domain %s = real(%a, %a)." d.Sd.name pp_float lo pp_float hi
  | Some Sd.Number_shape -> Format.fprintf ppf "domain %s = number." d.Sd.name
  | Some Sd.Text_shape -> Format.fprintf ppf "domain %s = text." d.Sd.name
  | Some Sd.Any_shape -> Format.fprintf ppf "domain %s = any." d.Sd.name
  | None ->
      failwith
        (Printf.sprintf
           "Pretty: domain %s has a custom characteristic function and cannot be \
            serialised"
           d.Sd.name)

let pp_region ppf name (r : Gdp_space.Region.t) =
  match r with
  | Gdp_space.Region.Rect { min_x; min_y; max_x; max_y } ->
      Format.fprintf ppf "region %s = rect(%a, %a, %a, %a)." name pp_float min_x
        pp_float min_y pp_float max_x pp_float max_y
  | Gdp_space.Region.Circle { center; radius } ->
      Format.fprintf ppf "region %s = circle(%a, %a, %a)." name pp_float
        center.Gdp_space.Point.x pp_float center.Gdp_space.Point.y pp_float radius
  | Gdp_space.Region.Polygon vs ->
      Format.fprintf ppf "region %s = polygon(%s)." name
        (String.concat ", "
           (List.map
              (fun (p : Gdp_space.Point.t) ->
                Format.asprintf "(%a, %a)" pp_float p.Gdp_space.Point.x pp_float
                  p.Gdp_space.Point.y)
              vs))
  | _ ->
      failwith
        (Printf.sprintf
           "Pretty: region %s uses set operations not expressible in the surface \
            syntax"
           name)

let builtin_domains = [ "number"; "text"; "boolean"; "any" ]

let spec ppf (s : Spec.t) =
  let line fmt = Format.fprintf ppf (fmt ^^ "@.") in
  (* header declarations *)
  (match s.Spec.coord with
  | Gdp_space.Coord.Cartesian -> ()
  | Gdp_space.Coord.Polar -> line "coordinate polar."
  | Gdp_space.Coord.Geographic -> line "coordinate geographic."
  | Gdp_space.Coord.Utm { zone } -> line "coordinate utm(%d)." zone);
  let now = Gdp_temporal.Clock.now s.Spec.clock in
  if now <> 0.0 then line "clock %s." (Format.asprintf "%a" pp_float now);
  (match s.Spec.fuzzy_family with
  | Gdp_fuzzy.Algebra.Min_max -> ()
  | Gdp_fuzzy.Algebra.Product -> line "fuzzy product."
  | Gdp_fuzzy.Algebra.Lukasiewicz -> line "fuzzy lukasiewicz.");
  Sd.Registry.names s.Spec.domains
  |> List.filter (fun n -> not (List.mem n builtin_domains))
  |> List.iter (fun n ->
         match Sd.Registry.find s.Spec.domains n with
         | Some d -> Format.fprintf ppf "%a@." pp_domain d
         | None -> ());
  (match List.rev s.Spec.objects with
  | [] -> ()
  | objects -> line "objects %s." (String.concat ", " objects));
  List.iter
    (fun (sg : Spec.signature) ->
      let domains =
        match sg.Spec.value_domains with
        | [] -> ""
        | ds -> Printf.sprintf "{%s}" (String.concat ", " ds)
      in
      line "predicate %s%s(%d)." sg.Spec.pred_name domains sg.Spec.object_arity)
    s.Spec.signatures;
  List.iter
    (fun (r : Gdp_space.Resolution.t) ->
      let o = r.Gdp_space.Resolution.origin in
      if Gdp_space.Point.equal o Gdp_space.Point.origin then
        line "space %s = grid(%s, %s)." r.Gdp_space.Resolution.name
          (Format.asprintf "%a" pp_float r.Gdp_space.Resolution.dx)
          (Format.asprintf "%a" pp_float r.Gdp_space.Resolution.dy)
      else
        line "space %s = grid(%s, %s) origin (%s, %s)." r.Gdp_space.Resolution.name
          (Format.asprintf "%a" pp_float r.Gdp_space.Resolution.dx)
          (Format.asprintf "%a" pp_float r.Gdp_space.Resolution.dy)
          (Format.asprintf "%a" pp_float o.Gdp_space.Point.x)
          (Format.asprintf "%a" pp_float o.Gdp_space.Point.y))
    s.Spec.spaces;
  List.iter
    (fun (r : Gdp_temporal.Resolution1d.t) ->
      line "timespace %s = line(%s) origin %s." r.Gdp_temporal.Resolution1d.name
        (Format.asprintf "%a" pp_float r.Gdp_temporal.Resolution1d.step)
        (Format.asprintf "%a" pp_float r.Gdp_temporal.Resolution1d.origin))
    s.Spec.tspaces;
  List.iter (fun (name, r) -> Format.fprintf ppf "%a@." (fun ppf -> pp_region ppf name) r)
    s.Spec.regions;
  List.iter
    (fun (m : Spec.model_def) ->
      if m.Spec.model_name <> Names.default_model then
        line "model %s." m.Spec.model_name)
    s.Spec.models;
  if s.Spec.extra_builtins <> [] then
    line "// note: %d OCaml builtin(s) not serialisable: %s"
      (List.length s.Spec.extra_builtins)
      (String.concat ", "
         (List.map (fun ((n, k), _) -> Printf.sprintf "%s/%d" n k) s.Spec.extra_builtins));
  (* model contents *)
  List.iter
    (fun (m : Spec.model_def) ->
      let default = String.equal m.Spec.model_name Names.default_model in
      let indent = if default then "" else "  " in
      if not default then line "in %s {" m.Spec.model_name;
      List.iter
        (fun f ->
          Format.fprintf ppf "%sfact %a.@." indent (pp_fact_in (fresh_names ())) f)
        (List.rev m.Spec.facts);
      List.iter
        (fun (f, a) ->
          Format.fprintf ppf "%sacc %s %a.@." indent
            (Format.asprintf "%a" pp_float a)
            (pp_fact_in (fresh_names ())) f)
        (List.rev m.Spec.acc_statements);
      List.iter
        (fun r -> Format.fprintf ppf "%s%a@." indent (pp_rule_in (fresh_names ())) r)
        m.Spec.rules;
      List.iter
        (fun r -> Format.fprintf ppf "%s%a@." indent (pp_rule_in (fresh_names ())) r)
        m.Spec.constraints;
      if not default then line "}")
    s.Spec.models;
  (* user-defined meta-models (the standard library is re-installed by the
     elaborator, so only non-standard names are emitted) *)
  List.iter
    (fun (m : Spec.meta_model) ->
      if not (List.mem m.Spec.meta_name Meta.standard_names) then begin
        line "metamodel %s%s {" m.Spec.meta_name
          (if m.Spec.needs_loop_check then " loopcheck" else "");
        List.iter
          (fun (c : Gdp_logic.Database.clause) ->
            match c.Gdp_logic.Database.body with
            | [] -> line "  %s." (T.to_string c.Gdp_logic.Database.head)
            | body ->
                line "  %s :- %s."
                  (T.to_string c.Gdp_logic.Database.head)
                  (String.concat ", " (List.map T.to_string body)))
          m.Spec.meta_clauses;
        line "}"
      end)
    s.Spec.meta_models

let spec_to_string s = Format.asprintf "%a" spec s
