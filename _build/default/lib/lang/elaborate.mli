(** Elaboration of a parsed program into a {!Gdp_core.Spec.t}.

    Elaboration performs the checks the paper's formalism implies: facts
    must be ground, models/spaces/domains must be declared before use,
    rules must pass the {!Gdp_core.Formula.check_safety} analysis, and
    accuracy statements may not decorate basic facts directly (they
    elaborate to separate [acc] statements per §VII-B). Errors carry the
    source position. *)

type view = { view_name : string; view_models : string list; view_metas : string list }

type result = {
  spec : Gdp_core.Spec.t;
  views : view list;
  uses : string list;  (** accumulated [use ...] meta-model activations *)
}

exception Error of string

val program : ?spec:Gdp_core.Spec.t -> ?base_dir:string -> Ast.program -> result
(** Elaborate into a fresh spec (with the standard meta-models installed)
    or extend the given one. [base_dir] (default ".") resolves relative
    [include] paths; circular includes raise {!Error}. *)

val load_string : ?spec:Gdp_core.Spec.t -> ?base_dir:string -> string -> result
(** Parse and elaborate. *)

val load_file : ?spec:Gdp_core.Spec.t -> string -> result

val query :
  result -> ?view:string -> ?models:string list -> ?metas:string list -> unit ->
  Gdp_core.Query.t
(** Build a query handle: by named view, by explicit model/meta lists, or
    (default) all models with the file's [use] activations. *)

val body_to_formula : Ast.body -> Gdp_core.Formula.t
val fact_to_pattern : Ast.fact_atom -> Gdp_core.Gfact.t
(** Shared with the CLI's ad-hoc query mode; variables with equal names
    unify within one call. *)
