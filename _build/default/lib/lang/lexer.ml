type token =
  | Ident of string
  | Var of string
  | Int of int
  | Float of float
  | Str of string
  | Punct of string
  | Raw of string
  | Eof

type t = { token : token; line : int; col : int }

exception Error of string

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let error st fmt =
  Format.kasprintf
    (fun msg -> raise (Error (Printf.sprintf "%d:%d: %s" st.line st.col msg)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_ws st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec go depth =
        match (peek st, peek2 st) with
        | None, _ -> error st "unterminated comment"
        | Some '*', Some '/' ->
            advance st;
            advance st;
            if depth > 1 then go (depth - 1)
        | Some '/', Some '*' ->
            advance st;
            advance st;
            go (depth + 1)
        | Some _, _ ->
            advance st;
            go depth
      in
      go 1;
      skip_ws st
  | _ -> ()

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_lower c || is_upper c || is_digit c

let take_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_exponent st =
  (* called with the cursor on 'e'/'E'; only consumes when a digit (with
     optional sign) follows, so "2e" stays Int 2 + Ident e *)
  match peek st with
  | Some ('e' | 'E') -> (
      let after_sign =
        match peek2 st with
        | Some ('+' | '-') ->
            if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2]
            else None
        | other -> other
      in
      match after_sign with
      | Some c when is_digit c ->
          advance st;
          let sign =
            match peek st with
            | Some (('+' | '-') as c) ->
                advance st;
                String.make 1 c
            | _ -> ""
          in
          Some ("e" ^ sign ^ take_while st is_digit)
      | _ -> None)
  | _ -> None

let lex_number st =
  let intpart = take_while st is_digit in
  let has_frac =
    peek st = Some '.'
    && match peek2 st with Some c -> is_digit c | None -> false
  in
  if has_frac then begin
    advance st;
    let frac = take_while st is_digit in
    let expo = Option.value (lex_exponent st) ~default:"" in
    Float (float_of_string (intpart ^ "." ^ frac ^ expo))
  end
  else
    match lex_exponent st with
    | Some expo -> Float (float_of_string (intpart ^ ".0" ^ expo))
    | None -> Int (int_of_string intpart)

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> error st "unterminated escape");
        advance st;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Str (Buffer.contents buf)

(* multi-character operators, longest first *)
let operators =
  [ "\\=="; "=:="; "=\\="; "=>"; "<-"; ">="; "=<"; "=="; "\\="; ">"; "<"; "=" ]

let try_operator st =
  let rest = String.length st.src - st.pos in
  let matches op =
    let n = String.length op in
    n <= rest && String.equal (String.sub st.src st.pos n) op
  in
  match List.find_opt matches operators with
  | Some op ->
      String.iter (fun _ -> advance st) op;
      Some (Punct op)
  | None -> None

let next_token st =
  skip_ws st;
  let line = st.line and col = st.col in
  let token =
    match peek st with
    | None -> Eof
    | Some c when is_digit c -> lex_number st
    | Some c when is_lower c -> Ident (take_while st is_ident)
    | Some c when is_upper c -> Var (take_while st is_ident)
    | Some '"' -> lex_string st
    | Some ('(' | ')' | '[' | ']' | '{' | '}' | ',' | '.' | ';' | ':' | '\'' | '@'
          | '&' | '%' | '+' | '-' | '*' | '/' | '|') as some_c ->
        (match try_operator st with
        | Some tok -> tok
        | None ->
            let c = Option.get some_c in
            advance st;
            Punct (String.make 1 c))
    | Some _ -> (
        match try_operator st with
        | Some tok -> tok
        | None -> error st "unexpected character %C" (Option.get (peek st)))
  in
  { token; line; col }

let capture_raw st =
  (* st is positioned just after the opening '{' *)
  let buf = Buffer.create 128 in
  let rec go depth =
    match peek st with
    | None -> error st "unterminated raw block"
    | Some '{' ->
        Buffer.add_char buf '{';
        advance st;
        go (depth + 1)
    | Some '}' ->
        advance st;
        if depth > 1 then begin
          Buffer.add_char buf '}';
          go (depth - 1)
        end
    | Some '\'' ->
        (* quoted atom: copy verbatim so braces inside quotes are safe *)
        Buffer.add_char buf '\'';
        advance st;
        let rec copy_quoted () =
          match peek st with
          | None -> error st "unterminated quoted atom in raw block"
          | Some '\'' ->
              Buffer.add_char buf '\'';
              advance st
          | Some c ->
              Buffer.add_char buf c;
              advance st;
              copy_quoted ()
        in
        copy_quoted ();
        go depth
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go depth
  in
  go 1;
  Buffer.contents buf

let tokenize ?(raw_after = []) src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc pending_raw =
    let tok = next_token st in
    match tok.token with
    | Eof -> List.rev (tok :: acc)
    | Punct "{" when pending_raw ->
        let line = st.line and col = st.col in
        let raw = capture_raw st in
        go ({ token = Raw raw; line; col } :: acc) false
    | Ident k when List.mem k raw_after -> go (tok :: acc) true
    | Punct "." -> go (tok :: acc) false
    | _ -> go (tok :: acc) pending_raw
  in
  go [] false

let tokens src = tokenize src
let tokenize_with_raw_after src ~keywords = tokenize ~raw_after:keywords src
