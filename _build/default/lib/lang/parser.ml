open Ast

exception Error of string

type state = { mutable toks : Lexer.t list }

let current st = match st.toks with [] -> assert false | t :: _ -> t

let err st fmt =
  let t = current st in
  Format.kasprintf
    (fun msg -> raise (Error (Printf.sprintf "%d:%d: %s" t.Lexer.line t.Lexer.col msg)))
    fmt

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let token st = (current st).Lexer.token

let pos_of st =
  let t = current st in
  { line = t.Lexer.line; col = t.Lexer.col }

let expect_punct st p =
  match token st with
  | Lexer.Punct q when String.equal p q -> advance st
  | _ -> err st "expected '%s'" p

let expect_ident st =
  match token st with
  | Lexer.Ident name ->
      advance st;
      name
  | _ -> err st "expected an identifier"

let expect_keyword st kw =
  match token st with
  | Lexer.Ident name when String.equal name kw -> advance st
  | _ -> err st "expected '%s'" kw

let accept_punct st p =
  match token st with
  | Lexer.Punct q when String.equal p q ->
      advance st;
      true
  | _ -> false

let accept_keyword st kw =
  match token st with
  | Lexer.Ident name when String.equal name kw ->
      advance st;
      true
  | _ -> false

let number st =
  match token st with
  | Lexer.Int n ->
      advance st;
      float_of_int n
  | Lexer.Float f ->
      advance st;
      f
  | Lexer.Punct "-" -> (
      advance st;
      match token st with
      | Lexer.Int n ->
          advance st;
          -.float_of_int n
      | Lexer.Float f ->
          advance st;
          -.f
      | _ -> err st "expected a number after '-'")
  | _ -> err st "expected a number"

let integer st =
  let f = number st in
  if Float.is_integer f then int_of_float f else err st "expected an integer"

let ident_list st =
  let rec go acc =
    let name = expect_ident st in
    if accept_punct st "," then go (name :: acc) else List.rev (name :: acc)
  in
  go []

(* ---------- expressions ---------- *)

let rec simple_expr st =
  match token st with
  | Lexer.Int n ->
      advance st;
      E_int n
  | Lexer.Float f ->
      advance st;
      E_float f
  | Lexer.Str s ->
      advance st;
      E_str s
  | Lexer.Var v ->
      advance st;
      E_var v
  | Lexer.Punct "-" -> (
      advance st;
      match token st with
      | Lexer.Int n ->
          advance st;
          E_int (-n)
      | Lexer.Float f ->
          advance st;
          E_float (-.f)
      | _ -> err st "expected a number after '-'")
  | Lexer.Ident name ->
      advance st;
      if accept_punct st "(" then begin
        let args = expr_list st in
        expect_punct st ")";
        E_app (name, args)
      end
      else E_atom name
  | _ -> err st "expected a value"

and expr_list st =
  let rec go acc =
    let e = arith st in
    if accept_punct st "," then go (e :: acc) else List.rev (e :: acc)
  in
  go []

(* arithmetic for tests: + - * / over simple expressions *)
and arith st =
  let rec term_chain left =
    match token st with
    | Lexer.Punct (("+" | "-") as op) ->
        advance st;
        term_chain (E_app (op, [ left; term st ]))
    | _ -> left
  in
  term_chain (term st)

and term st =
  let rec factor_chain left =
    match token st with
    | Lexer.Punct (("*" | "/") as op) ->
        advance st;
        factor_chain (E_app (op, [ left; factor st ]))
    | _ -> left
  in
  factor_chain (factor st)

and factor st =
  if accept_punct st "(" then begin
    let e = arith st in
    expect_punct st ")";
    e
  end
  else simple_expr st

let comparison_ops = [ ">"; "<"; ">="; "=<"; "=="; "\\=="; "="; "\\="; "=:="; "=\\=" ]

let test_expr st =
  let left = arith st in
  match token st with
  | Lexer.Punct op when List.mem op comparison_ops ->
      advance st;
      E_app (op, [ left; arith st ])
  | Lexer.Ident "is" ->
      advance st;
      E_app ("is", [ left; arith st ])
  | _ -> left

(* ---------- facts ---------- *)

let position_args st =
  (* '(' e ',' e [',' e] ')' or a variable *)
  match token st with
  | Lexer.Var v ->
      advance st;
      [ E_var v ]
  | Lexer.Punct "(" ->
      advance st;
      let args = expr_list st in
      expect_punct st ")";
      if List.length args < 2 || List.length args > 3 then
        err st "a position has two or three coordinates"
      else args
  | _ -> err st "expected a position '(x, y)' or a variable"

let spatial_qualifier st =
  (* '@' already consumed *)
  match token st with
  | Lexer.Ident (("u" | "s" | "a") as kind) when
      (match st.toks with
      | _ :: { Lexer.token = Lexer.Punct "["; _ } :: _ -> true
      | _ -> false) ->
      advance st;
      expect_punct st "[";
      let space = expect_ident st in
      expect_punct st "]";
      let p = position_args st in
      (match kind with
      | "u" -> Sq_uniform (space, p)
      | "s" -> Sq_sampled (space, p)
      | _ -> Sq_averaged (space, p))
  | _ -> Sq_at (position_args st)

let interval_bound st =
  match token st with
  | Lexer.Ident "inf" ->
      advance st;
      B_inf
  | Lexer.Ident "now" ->
      advance st;
      (match token st with
      | Lexer.Punct "+" ->
          advance st;
          B_now (number st)
      | Lexer.Punct "-" ->
          advance st;
          B_now (-.number st)
      | _ -> B_now 0.0)
  | Lexer.Var v ->
      advance st;
      B_var v
  | _ -> B_num (number st)

let interval_expr st =
  let lower_closed =
    if accept_punct st "[" then true
    else if accept_punct st "(" then false
    else err st "expected '[' or '(' to open an interval"
  in
  let lower = interval_bound st in
  expect_punct st ",";
  let upper = interval_bound st in
  let upper_closed =
    if accept_punct st "]" then true
    else if accept_punct st ")" then false
    else err st "expected ']' or ')' to close an interval"
  in
  { lower; lower_closed; upper; upper_closed }

let temporal_qualifier st =
  (* '&' already consumed *)
  match token st with
  | Lexer.Ident "c" when
      (match st.toks with
      | _ :: { Lexer.token = Lexer.Punct "["; _ } :: _ -> true
      | _ -> false) ->
      advance st;
      expect_punct st "[";
      let period = number st in
      expect_punct st "]";
      Tq_cyclic (period, interval_expr st)
  | Lexer.Ident (("u" | "s" | "a") as kind) when
      (match st.toks with
      | _ :: { Lexer.token = Lexer.Punct ("[" | "("); _ } :: _ -> true
      | _ -> false) -> (
      advance st;
      (* two forms: an explicit interval [t1, t2] / (t1, t2] ..., or a
         named temporal resolution [years] followed by an instant — "an
         interval definition in place of the resolution function" (§VI-B),
         in reverse *)
      match (token st, st.toks) with
      | Lexer.Punct "[", _ :: { Lexer.token = Lexer.Ident _; _ }
                         :: { Lexer.token = Lexer.Punct "]"; _ } :: _ ->
          advance st;
          let tspace = expect_ident st in
          expect_punct st "]";
          let instant = number st in
          Tq_resolution (kind, tspace, instant)
      | _ -> (
          let iv = interval_expr st in
          match kind with
          | "u" -> Tq_uniform iv
          | "s" -> Tq_sampled iv
          | _ -> Tq_averaged iv))
  | Lexer.Ident "now" ->
      advance st;
      Tq_at (E_atom "now")
  | Lexer.Var v ->
      advance st;
      Tq_at (E_var v)
  | _ -> Tq_at (E_float (number st))

let rec fact_atom st =
  let fa_pos = pos_of st in
  let rec qualifiers space time =
    if accept_punct st "@" then begin
      if space <> Sq_none then err st "duplicate spatial qualifier";
      qualifiers (spatial_qualifier st) time
    end
    else if accept_punct st "&" then begin
      if time <> Tq_none then err st "duplicate temporal qualifier";
      qualifiers space (temporal_qualifier st)
    end
    else (space, time)
  in
  let fa_space, fa_time = qualifiers Sq_none Tq_none in
  let first = expect_ident st in
  let fa_model, fa_pred =
    if accept_punct st "'" then (Some first, expect_ident st) else (None, first)
  in
  let group () =
    let args = if token st = Lexer.Punct ")" then [] else expr_list st in
    expect_punct st ")";
    args
  in
  if not (accept_punct st "(") then
    err st "expected '(' after predicate %s" fa_pred;
  let g1 = group () in
  if accept_punct st "(" then begin
    let g2 = group () in
    { fa_model; fa_pred; fa_values = g1; fa_objects = g2; fa_space; fa_time; fa_pos }
  end
  else
    { fa_model; fa_pred; fa_values = []; fa_objects = g1; fa_space; fa_time; fa_pos }

(* ---------- bodies ---------- *)

and body_expr st =
  let left = conj st in
  if accept_punct st ";" then B_or (left, body_expr st) else left

and conj st =
  let left = body_unit st in
  if accept_punct st "," then B_and (left, conj st) else left

and body_unit st =
  match token st with
  | Lexer.Ident "not" ->
      advance st;
      B_not (body_unit st)
  | Lexer.Ident "forall" ->
      advance st;
      expect_punct st "(";
      let guard = body_expr st in
      expect_punct st "=>";
      let concl = body_expr st in
      expect_punct st ")";
      B_forall (guard, concl)
  | Lexer.Ident "test" ->
      advance st;
      B_test (test_expr st)
  | Lexer.Punct "(" ->
      advance st;
      let b = body_expr st in
      expect_punct st ")";
      b
  | Lexer.Punct "%" ->
      advance st;
      expect_punct st "[";
      let v =
        match token st with
        | Lexer.Var v ->
            advance st;
            E_var v
        | _ -> err st "expected a variable in %%[...]"
      in
      expect_punct st "]";
      let atom = fact_atom st in
      B_acc (atom, v)
  | Lexer.Var _ -> B_test (test_expr st)
  | Lexer.Int _ | Lexer.Float _ -> B_test (test_expr st)
  | Lexer.Punct ("@" | "&") | Lexer.Ident _ -> B_atom (fact_atom st)
  | _ -> err st "expected a body element"

(* ---------- statements ---------- *)

let domain_def st =
  match token st with
  | Lexer.Punct "{" ->
      advance st;
      let names = ident_list st in
      expect_punct st "}";
      D_enum names
  | Lexer.Ident "real" ->
      advance st;
      if accept_punct st "(" then begin
        let lo = number st in
        expect_punct st ",";
        let hi = number st in
        expect_punct st ")";
        D_real_range (lo, hi)
      end
      else D_number
  | Lexer.Ident ("int" | "integer") ->
      advance st;
      if accept_punct st "(" then begin
        let lo = integer st in
        expect_punct st ",";
        let hi = integer st in
        expect_punct st ")";
        D_int_range (lo, hi)
      end
      else D_number
  | Lexer.Ident "number" ->
      advance st;
      D_number
  | Lexer.Ident "text" ->
      advance st;
      D_text
  | Lexer.Ident "any" ->
      advance st;
      D_any
  | _ -> err st "expected a domain definition"

let region_def st =
  match token st with
  | Lexer.Ident "rect" ->
      advance st;
      expect_punct st "(";
      let a = number st in
      expect_punct st ",";
      let b = number st in
      expect_punct st ",";
      let c = number st in
      expect_punct st ",";
      let d = number st in
      expect_punct st ")";
      R_rect (a, b, c, d)
  | Lexer.Ident "circle" ->
      advance st;
      expect_punct st "(";
      let x = number st in
      expect_punct st ",";
      let y = number st in
      expect_punct st ",";
      let r = number st in
      expect_punct st ")";
      R_circle (x, y, r)
  | Lexer.Ident "polygon" ->
      advance st;
      expect_punct st "(";
      let rec points acc =
        expect_punct st "(";
        let x = number st in
        expect_punct st ",";
        let y = number st in
        expect_punct st ")";
        if accept_punct st "," then points ((x, y) :: acc)
        else List.rev ((x, y) :: acc)
      in
      let pts = points [] in
      expect_punct st ")";
      R_poly pts
  | _ -> err st "expected rect(...), circle(...) or polygon(...)"

let rec statement st ~in_model =
  let kw = expect_ident st in
  let stmt =
    match kw with
    | "coordinate" ->
        let name = expect_ident st in
        let zone =
          if accept_punct st "(" then begin
            let z = integer st in
            expect_punct st ")";
            Some z
          end
          else None
        in
        S_coordinate (name, zone)
    | "clock" -> S_clock (number st)
    | "fuzzy" -> S_fuzzy (expect_ident st)
    | "domain" ->
        let name = expect_ident st in
        expect_punct st "=";
        S_domain (name, domain_def st)
    | "object" | "objects" -> S_objects (ident_list st)
    | "predicate" ->
        let name = expect_ident st in
        let domains =
          if accept_punct st "{" then begin
            let ds = ident_list st in
            expect_punct st "}";
            ds
          end
          else []
        in
        let arity =
          if accept_punct st "(" then begin
            let n = integer st in
            expect_punct st ")";
            n
          end
          else 1
        in
        S_predicate (name, domains, arity)
    | "space" ->
        let name = expect_ident st in
        expect_punct st "=";
        expect_keyword st "grid";
        expect_punct st "(";
        let dx = number st in
        let dy = if accept_punct st "," then number st else dx in
        expect_punct st ")";
        let ox, oy =
          if accept_keyword st "origin" then begin
            expect_punct st "(";
            let x = number st in
            expect_punct st ",";
            let y = number st in
            expect_punct st ")";
            (x, y)
          end
          else (0.0, 0.0)
        in
        S_space { name; dx; dy; ox; oy }
    | "timespace" ->
        let name = expect_ident st in
        expect_punct st "=";
        expect_keyword st "line";
        expect_punct st "(";
        let step = number st in
        expect_punct st ")";
        let origin = if accept_keyword st "origin" then number st else 0.0 in
        S_timespace { name; step; origin }
    | "region" ->
        let name = expect_ident st in
        expect_punct st "=";
        S_region (name, region_def st)
    | "model" -> S_model (expect_ident st)
    | "fact" ->
        let f = fact_atom st in
        let f =
          match (in_model, f.fa_model) with
          | Some m, None -> { f with fa_model = Some m }
          | _ -> f
        in
        S_fact f
    | "acc" ->
        let a = number st in
        let f = fact_atom st in
        let f =
          match (in_model, f.fa_model) with
          | Some m, None -> { f with fa_model = Some m }
          | _ -> f
        in
        S_acc_fact (f, a)
    | "rule" ->
        let r_pos = pos_of st in
        let r_accuracy =
          if accept_punct st "%" then
            Some
              (match token st with
              | Lexer.Var v ->
                  advance st;
                  E_var v
              | Lexer.Int n ->
                  advance st;
                  E_float (float_of_int n)
              | Lexer.Float f ->
                  advance st;
                  E_float f
              | _ -> err st "expected a variable or number after %%")
          else None
        in
        let head = fact_atom st in
        let head =
          match (in_model, head.fa_model) with
          | Some m, None -> { head with fa_model = Some m }
          | _ -> head
        in
        expect_punct st "<-";
        S_rule { r_accuracy; r_head = head; r_body = body_expr st; r_pos }
    | "constraint" ->
        let c_pos = pos_of st in
        let tag = expect_ident st in
        let args =
          if accept_punct st "(" then begin
            let args = if token st = Lexer.Punct ")" then [] else expr_list st in
            expect_punct st ")";
            args
          end
          else []
        in
        expect_punct st "<-";
        S_constraint
          { c_tag = tag; c_args = args; c_body = body_expr st; c_model = in_model; c_pos }
    | "metamodel" ->
        let name = expect_ident st in
        let loopcheck = accept_keyword st "loopcheck" in
        (match token st with
        | Lexer.Raw text ->
            advance st;
            S_metamodel { mm_name = name; mm_loopcheck = loopcheck; mm_clauses = text }
        | _ -> err st "expected '{ ... }' after metamodel %s" name)
    | "include" -> (
        match token st with
        | Lexer.Str path ->
            advance st;
            S_include path
        | _ -> err st "expected a quoted path after include")
    | "use" -> S_use (ident_list st)
    | "view" ->
        let v_name = expect_ident st in
        expect_punct st "=";
        expect_keyword st "models";
        expect_punct st "{";
        let v_models = if token st = Lexer.Punct "}" then [] else ident_list st in
        expect_punct st "}";
        let v_metas =
          if accept_keyword st "meta" then begin
            expect_punct st "{";
            let ms = if token st = Lexer.Punct "}" then [] else ident_list st in
            expect_punct st "}";
            ms
          end
          else []
        in
        S_view { v_name; v_models; v_metas }
    | other -> err st "unknown statement keyword '%s'" other
  in
  (match stmt with
  | S_metamodel _ -> () (* raw block consumed its own closing brace *)
  | _ -> expect_punct st ".");
  stmt

and statements st ~in_model ~until_brace =
  let rec go acc =
    match token st with
    | Lexer.Eof when not until_brace -> List.rev acc
    | Lexer.Eof -> err st "unexpected end of input inside model block"
    | Lexer.Punct "}" when until_brace -> List.rev acc
    | Lexer.Ident "in" when in_model = None ->
        advance st;
        let m = expect_ident st in
        expect_punct st "{";
        let inner = statements st ~in_model:(Some m) ~until_brace:true in
        expect_punct st "}";
        go (List.rev_append inner acc)
    | _ -> go (statement st ~in_model :: acc)
  in
  go []

let make_state src =
  { toks = Lexer.tokenize_with_raw_after src ~keywords:[ "metamodel" ] }

let program src =
  try statements (make_state src) ~in_model:None ~until_brace:false
  with Lexer.Error msg -> raise (Error msg)

let body src =
  try
    let st = make_state src in
    let b = body_expr st in
    (match token st with
    | Lexer.Eof -> ()
    | Lexer.Punct "." -> ()
    | _ -> err st "trailing input after body");
    b
  with Lexer.Error msg -> raise (Error msg)

let fact src =
  try
    let st = make_state src in
    let f = fact_atom st in
    (match token st with
    | Lexer.Eof -> ()
    | Lexer.Punct "." -> ()
    | _ -> err st "trailing input after fact");
    f
  with Lexer.Error msg -> raise (Error msg)
