open Ast
module T = Gdp_logic.Term
open Gdp_core

type view = { view_name : string; view_models : string list; view_metas : string list }

type result = { spec : Spec.t; views : view list; uses : string list }

exception Error of string

let error pos fmt =
  Format.kasprintf
    (fun msg ->
      raise (Error (Format.asprintf "%a: %s" Ast.pp_position pos msg)))
    fmt

(* Variables with the same name share an id within one elaboration scope
   (a fact, a rule, a constraint). *)
type scope = (string, T.var) Hashtbl.t

let fresh_scope () : scope = Hashtbl.create 8

let scope_var scope name =
  if String.equal name "_" then T.Var (T.var_with_id "_" (T.fresh_id ()))
  else
    match Hashtbl.find_opt scope name with
    | Some v -> T.Var v
    | None ->
        let v = T.var_with_id name (T.fresh_id ()) in
        Hashtbl.add scope name v;
        T.Var v

let rec expr_to_term scope = function
  | E_atom a -> T.atom a
  | E_var v -> scope_var scope v
  | E_int n -> T.int n
  | E_float f -> T.float f
  | E_str s -> T.str s
  | E_app (f, args) -> T.app f (List.map (expr_to_term scope) args)

let position_term scope = function
  | [ E_var v ] -> scope_var scope v
  | [ x; y ] -> T.app Names.pos [ expr_to_term scope x; expr_to_term scope y ]
  | [ x; y; z ] ->
      T.app Names.pos
        [ expr_to_term scope x; expr_to_term scope y; expr_to_term scope z ]
  | _ -> invalid_arg "position_term"

let spatial_to_gfact scope = function
  | Sq_none -> Gfact.S_everywhere
  | Sq_at p -> Gfact.S_at (position_term scope p)
  | Sq_uniform (r, p) -> Gfact.S_uniform (T.atom r, position_term scope p)
  | Sq_sampled (r, p) -> Gfact.S_sampled (T.atom r, position_term scope p)
  | Sq_averaged (r, p) -> Gfact.S_averaged (T.atom r, position_term scope p)

let bound_term scope ~closed = function
  | B_num f -> T.app (if closed then Names.incl else Names.excl) [ T.float f ]
  | B_now 0.0 -> T.app (if closed then Names.incl else Names.excl) [ T.atom Names.now ]
  | B_now off ->
      let sym = if off >= 0.0 then "+" else "-" in
      T.app
        (if closed then Names.incl else Names.excl)
        [ T.app sym [ T.atom Names.now; T.float (Float.abs off) ] ]
  | B_inf -> T.atom Names.inf
  | B_var v -> T.app (if closed then Names.incl else Names.excl) [ scope_var scope v ]

let interval_to_term scope iv =
  T.app Names.interval
    [
      bound_term scope ~closed:iv.lower_closed iv.lower;
      bound_term scope ~closed:iv.upper_closed iv.upper;
    ]

let temporal_to_gfact scope = function
  | Tq_none -> Gfact.T_always
  | Tq_at (E_atom "now") -> Gfact.T_at (T.atom Names.now)
  | Tq_at e -> Gfact.T_at (expr_to_term scope e)
  | Tq_uniform iv -> Gfact.T_uniform (interval_to_term scope iv)
  | Tq_sampled iv -> Gfact.T_sampled (interval_to_term scope iv)
  | Tq_averaged iv -> Gfact.T_averaged (interval_to_term scope iv)
  | Tq_resolution (kind, tspace, instant) -> (
      (* symbolic logical-time cell, resolved against the spec's declared
         temporal resolutions when the engine decodes intervals *)
      let cell = T.app "cell" [ T.atom tspace; T.float instant ] in
      match kind with
      | "u" -> Gfact.T_uniform cell
      | "s" -> Gfact.T_sampled cell
      | _ -> Gfact.T_averaged cell)
  | Tq_cyclic (period, iv) ->
      Gfact.T_var
        (T.app "cyc" [ T.float period; interval_to_term scope iv ])
  | Tq_var v -> Gfact.T_var (scope_var scope v)

let fact_to_pattern_in scope (f : fact_atom) =
  {
    Gfact.model = Option.map T.atom f.fa_model;
    pred = T.atom f.fa_pred;
    values = List.map (expr_to_term scope) f.fa_values;
    objects = List.map (expr_to_term scope) f.fa_objects;
    space = spatial_to_gfact scope f.fa_space;
    time = temporal_to_gfact scope f.fa_time;
  }

let fact_to_pattern f = fact_to_pattern_in (fresh_scope ()) f

let rec body_to_formula_in scope = function
  | B_atom f -> Formula.Atom (fact_to_pattern_in scope f)
  | B_acc (f, a) -> Formula.Acc (fact_to_pattern_in scope f, expr_to_term scope a)
  | B_test e -> Formula.Test (expr_to_term scope e)
  | B_and (a, b) -> Formula.And (body_to_formula_in scope a, body_to_formula_in scope b)
  | B_or (a, b) -> Formula.Or (body_to_formula_in scope a, body_to_formula_in scope b)
  | B_forall (g, c) ->
      Formula.Forall (body_to_formula_in scope g, body_to_formula_in scope c)
  | B_not a -> Formula.Not (body_to_formula_in scope a)

let body_to_formula b = body_to_formula_in (fresh_scope ()) b

let domain_of_def name = function
  | D_enum values -> Gdp_domain.Semantic_domain.enumeration ~name values
  | D_int_range (lo, hi) -> Gdp_domain.Semantic_domain.int_range ~name ~lo ~hi
  | D_real_range (lo, hi) -> Gdp_domain.Semantic_domain.real_range ~name ~lo ~hi
  | D_number -> Gdp_domain.Semantic_domain.number ~name
  | D_text -> Gdp_domain.Semantic_domain.text ~name
  | D_any -> Gdp_domain.Semantic_domain.any ~name

let region_of_def = function
  | R_rect (x0, y0, x1, y1) ->
      Gdp_space.Region.rect ~min_x:(Float.min x0 x1) ~min_y:(Float.min y0 y1)
        ~max_x:(Float.max x0 x1) ~max_y:(Float.max y0 y1)
  | R_circle (x, y, r) ->
      Gdp_space.Region.circle ~center:(Gdp_space.Point.make x y) ~radius:r
  | R_poly pts ->
      Gdp_space.Region.polygon (List.map (fun (x, y) -> Gdp_space.Point.make x y) pts)

let coordinate_of name zone pos =
  match (name, zone) with
  | "cartesian", None -> Gdp_space.Coord.Cartesian
  | "polar", None -> Gdp_space.Coord.Polar
  | "geographic", None -> Gdp_space.Coord.Geographic
  | "utm", Some z -> Gdp_space.Coord.Utm { zone = z }
  | "utm", None -> error pos "utm requires a zone: coordinate utm(18)."
  | other, _ -> error pos "unknown coordinate system '%s'" other

type ctx = { mutable base_dir : string; visited : (string, unit) Hashtbl.t }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec elaborate_statement ctx state stmt =
  let spec, views, uses = state in
  match stmt with
  | S_include path -> (
      let resolved =
        if Filename.is_relative path then Filename.concat ctx.base_dir path
        else path
      in
      if Hashtbl.mem ctx.visited resolved then
        raise (Error (Printf.sprintf "circular include of %s" resolved));
      Hashtbl.add ctx.visited resolved ();
      let content =
        try read_file resolved
        with Sys_error msg -> raise (Error (Printf.sprintf "include: %s" msg))
      in
      let statements =
        try Parser.program content
        with Parser.Error msg ->
          raise (Error (Printf.sprintf "in %s: %s" resolved msg))
      in
      let saved = ctx.base_dir in
      ctx.base_dir <- Filename.dirname resolved;
      let state' = List.fold_left (elaborate_statement ctx) state statements in
      ctx.base_dir <- saved;
      state')
  | S_coordinate (name, zone) ->
      spec.Spec.coord <- coordinate_of name zone { line = 0; col = 0 };
      (spec, views, uses)
  | S_clock t ->
      Gdp_temporal.Clock.set spec.Spec.clock t;
      (spec, views, uses)
  | S_fuzzy name -> (
      match Gdp_fuzzy.Algebra.family_of_string name with
      | Some family ->
          spec.Spec.fuzzy_family <- family;
          (spec, views, uses)
      | None -> raise (Error (Printf.sprintf "unknown fuzzy family '%s'" name)))
  | S_domain (name, def) ->
      Spec.declare_domain spec (domain_of_def name def);
      (spec, views, uses)
  | S_objects names ->
      Spec.declare_objects spec names;
      (spec, views, uses)
  | S_predicate (name, domains, arity) ->
      Spec.declare_predicate spec name ~value_domains:domains ~object_arity:arity;
      (spec, views, uses)
  | S_space { name; dx; dy; ox; oy } ->
      Spec.declare_space spec
        (Gdp_space.Resolution.make ~name ~origin:(Gdp_space.Point.make ox oy) ~dx ~dy ());
      (spec, views, uses)
  | S_timespace { name; step; origin } ->
      Spec.declare_tspace spec
        (Gdp_temporal.Resolution1d.make ~name ~origin ~step ());
      (spec, views, uses)
  | S_region (name, def) ->
      Spec.declare_region spec name (region_of_def def);
      (spec, views, uses)
  | S_model name ->
      Spec.declare_model spec name;
      (spec, views, uses)
  | S_fact f -> (
      let pattern = fact_to_pattern f in
      try
        Spec.add_fact spec pattern;
        (spec, views, uses)
      with Invalid_argument msg -> error f.fa_pos "%s" msg)
  | S_acc_fact (f, a) -> (
      let pattern = fact_to_pattern f in
      try
        Spec.add_acc_statement spec pattern a;
        (spec, views, uses)
      with Invalid_argument msg -> error f.fa_pos "%s" msg)
  | S_rule { r_accuracy; r_head; r_body; r_pos } -> (
      let scope = fresh_scope () in
      let head = fact_to_pattern_in scope r_head in
      let body = body_to_formula_in scope r_body in
      let accuracy = Option.map (expr_to_term scope) r_accuracy in
      let model =
        match head.Gfact.model with Some (T.Atom m) -> Some m | _ -> None
      in
      let head = { head with Gfact.model = None } in
      try
        Spec.add_rule spec ?model ~name:r_head.fa_pred ?accuracy ~head body;
        (spec, views, uses)
      with Invalid_argument msg -> error r_pos "%s" msg)
  | S_constraint { c_tag; c_args; c_body; c_model; c_pos } -> (
      let scope = fresh_scope () in
      let body = body_to_formula_in scope c_body in
      let args = List.map (expr_to_term scope) c_args in
      try
        Spec.add_constraint spec ?model:c_model ~name:c_tag ~error:c_tag ~args body;
        (spec, views, uses)
      with Invalid_argument msg -> error c_pos "%s" msg)
  | S_metamodel { mm_name; mm_loopcheck; mm_clauses } -> (
      try
        let clauses = Gdp_logic.Reader.program mm_clauses in
        Spec.add_meta_model spec
          {
            Spec.meta_name = mm_name;
            meta_doc = "user-defined meta-model";
            meta_clauses = clauses;
            needs_loop_check = mm_loopcheck;
          };
        (spec, views, uses)
      with
      | Gdp_logic.Reader.Parse_error msg ->
          raise (Error (Printf.sprintf "in metamodel %s: %s" mm_name msg))
      | Invalid_argument msg -> raise (Error msg))
  | S_use names -> (spec, views, uses @ names)
  | S_view { v_name; v_models; v_metas } ->
      ( spec,
        views @ [ { view_name = v_name; view_models = v_models; view_metas = v_metas } ],
        uses )

let program ?spec ?(base_dir = ".") stmts =
  let spec =
    match spec with
    | Some s -> s
    | None ->
        let s = Spec.create () in
        Meta.install_standard s;
        s
  in
  let ctx = { base_dir; visited = Hashtbl.create 4 } in
  let spec, views, uses =
    try List.fold_left (elaborate_statement ctx) (spec, [], []) stmts
    with Invalid_argument msg -> raise (Error msg)
  in
  { spec; views; uses }

let load_string ?spec ?base_dir src =
  try program ?spec ?base_dir (Parser.program src) with
  | Parser.Error msg -> raise (Error msg)
  | Lexer.Error msg -> raise (Error msg)

let load_file ?spec path =
  load_string ?spec ~base_dir:(Filename.dirname path) (read_file path)

let query result ?view ?models ?metas () =
  match view with
  | Some name -> (
      match
        List.find_opt (fun v -> String.equal v.view_name name) result.views
      with
      | Some v ->
          Query.create result.spec ~world_view:v.view_models ~meta_view:v.view_metas
      | None -> raise (Error (Printf.sprintf "unknown view '%s'" name)))
  | None ->
      let world_view =
        match models with Some m -> m | None -> Spec.default_world_view result.spec
      in
      let meta_view = match metas with Some m -> m | None -> result.uses in
      Query.create result.spec ~world_view ~meta_view
