(** Lexer for the GDP requirements language. [%] does {e not} start a
    comment here (it is the accuracy operator); comments are [//] to end
    of line and [/* ... */] (nesting). *)

type token =
  | Ident of string  (** lowercase-initial identifier *)
  | Var of string  (** uppercase/underscore-initial identifier *)
  | Int of int
  | Float of float
  | Str of string
  | Punct of string
      (** one of ( ) [ ] { } , . ; : ' @ & | and the operators
          => <- >= =< == \== \= =:= =\= > < = + - * / % *)
  | Raw of string  (** brace-delimited raw block, braces stripped *)
  | Eof

type t = { token : token; line : int; col : int }

exception Error of string
(** Message includes line:col. *)

val tokens : string -> t list
(** Tokenize fully. Raw blocks are {e not} produced here — see
    {!raw_block}. *)

val tokenize_with_raw_after : string -> keywords:string list -> t list
(** Like {!tokens}, but whenever the token sequence
    [Ident k; ...; Punct "{"] with [k] in [keywords] is seen, the braces'
    content is captured verbatim as a single [Raw] token (respecting
    nested braces, quotes and comments). Used for [metamodel name { ... }]
    blocks whose interior is engine-clause syntax. *)
