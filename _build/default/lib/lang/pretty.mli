(** Pretty-printing a specification back to the requirements language.

    [Pretty.spec] emits a program that {!Elaborate.load_string} accepts
    and that elaborates to an observably equivalent specification
    (round-trip property-tested in [test/suite_pretty.ml]). Limitations,
    reported by {!spec} raising [Failure]:
    - intensional semantic domains built in OCaml (custom [contains]
      functions) cannot be serialised — only the shapes the language can
      express (enumerations, ranges, number/text/any) survive;
    - spec builtins ({!Gdp_core.Spec.declare_builtin}) are OCaml closures
      and are emitted as a warning comment;
    - user meta-models round-trip through the engine-clause syntax. *)

val fact : Format.formatter -> Gdp_core.Gfact.t -> unit
(** One fact pattern in surface syntax (no trailing dot). *)

val formula : Format.formatter -> Gdp_core.Formula.t -> unit
(** A rule body in surface syntax. *)

val rule : Format.formatter -> Gdp_core.Spec.rule -> unit
(** A whole [rule ... <- ... .] or [constraint ...] statement. *)

val spec : Format.formatter -> Gdp_core.Spec.t -> unit
(** The full program: declarations, models ([in m { ... }] blocks for
    non-default models), meta-models. *)

val spec_to_string : Gdp_core.Spec.t -> string
